package experiments

import (
	"fmt"

	"emmcio/internal/analysis"
	"emmcio/internal/biotracer"
	"emmcio/internal/core"
	"emmcio/internal/paper"
	"emmcio/internal/report"
	"emmcio/internal/stats"
	"emmcio/internal/trace"
)

// Fig3Result is the throughput-vs-request-size sweep on the measured device.
type Fig3Result struct {
	Points []core.ThroughputPoint
}

// Fig3 reproduces the Fig. 3 microbenchmark: sweep request sizes from 4 KB
// to 16 MB on the measured-device model (reads stop at 256 KB, the largest
// read in any trace), issuing reqsPerPoint back-to-back requests per point.
func Fig3(reqsPerPoint int) (Fig3Result, error) {
	pts, err := throughputSweep(reqsPerPoint)
	if err != nil {
		return Fig3Result{}, err
	}
	return Fig3Result{Points: pts}, nil
}

func throughputSweep(reqsPerPoint int) ([]core.ThroughputPoint, error) {
	timing := MeasuredDeviceTiming()
	var out []core.ThroughputPoint
	for _, size := range core.Fig3Sizes() {
		p := core.ThroughputPoint{SizeBytes: size}
		for _, op := range []trace.Op{trace.Read, trace.Write} {
			if op == trace.Read && size > core.MaxReadSize {
				continue
			}
			dev, err := core.NewDevice(core.Scheme4PS, core.Options{Timing: &timing})
			if err != nil {
				return nil, err
			}
			if op == trace.Read {
				prep := trace.Request{LBA: 0, Size: uint32(size), Op: trace.Write}
				if _, err := dev.Submit(prep); err != nil {
					return nil, err
				}
			}
			var busy int64
			arrival := int64(1 << 40)
			var lba uint64
			if op == trace.Write {
				lba = 1 << 20
			}
			for i := 0; i < reqsPerPoint; i++ {
				req := trace.Request{Arrival: arrival, LBA: lba, Size: uint32(size), Op: op}
				res, err := dev.Submit(req)
				if err != nil {
					return nil, err
				}
				busy += res.Finish - res.ServiceStart
				arrival = res.Finish
				if op == trace.Write {
					lba += uint64(size) / trace.SectorSize
				}
			}
			mbs := float64(size) * float64(reqsPerPoint) / (float64(busy) / 1e9) / 1e6
			if op == trace.Read {
				p.ReadMBs = mbs
			} else {
				p.WriteMBs = mbs
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// Render returns the Fig. 3 series table.
func (r Fig3Result) Render() *report.Table {
	t := report.NewTable("Fig. 3: Throughput vs request size (measured-device model)",
		"Size", "Read MB/s", "Write MB/s")
	for _, p := range r.Points {
		read := "-"
		if p.ReadMBs > 0 {
			read = report.F(p.ReadMBs, 2)
		}
		t.AddRow(sizeLabel(p.SizeBytes), read, report.F(p.WriteMBs, 2))
	}
	return t
}

func sizeLabel(bytes int) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%dMB", bytes>>20)
	default:
		return fmt.Sprintf("%dKB", bytes>>10)
	}
}

// DistResult carries per-trace histograms for Figs. 4–6 (and Fig. 7's three
// panels for the combo traces).
type DistResult struct {
	Names []string
	Dists []analysis.Distributions
}

// Fig4 builds the request-size distributions of the 18 individual traces.
func Fig4(env *Env) DistResult {
	return distributions(env, paper.IndividualApps, false)
}

// Fig5 builds the response-time distributions of the 18 individual traces
// (requires replay on the measured device).
func Fig5(env *Env) (DistResult, error) {
	return replayedDistributions(env, paper.IndividualApps)
}

// Fig6 builds the inter-arrival distributions of the 18 individual traces.
func Fig6(env *Env) DistResult {
	return distributions(env, paper.IndividualApps, false)
}

// Fig7 builds all three distributions for the 7 combo traces.
func Fig7(env *Env) (DistResult, error) {
	return replayedDistributions(env, paper.ComboApps)
}

func distributions(env *Env, names []string, replay bool) DistResult {
	var res DistResult
	for _, name := range names {
		tr := env.Trace(name)
		res.Names = append(res.Names, name)
		res.Dists = append(res.Dists, analysis.DistributionsOf(tr))
	}
	return res
}

func replayedDistributions(env *Env, names []string) (DistResult, error) {
	var res DistResult
	for _, name := range names {
		tr := env.Trace(name)
		dev, err := NewMeasuredDevice()
		if err != nil {
			return res, err
		}
		if _, err := biotracer.Collect(dev, tr); err != nil {
			return res, err
		}
		res.Names = append(res.Names, name)
		res.Dists = append(res.Dists, analysis.DistributionsOf(tr))
	}
	return res, nil
}

// RenderSizes renders the Fig. 4 / Fig. 7a panel.
func (r DistResult) RenderSizes() *report.Table {
	labels := stats.NewHistogram(stats.SizeBounds()).Labels(1024, "KB")
	t := report.NewTable("Request size distributions (fractions)", append([]string{"Application"}, labels...)...)
	for i, name := range r.Names {
		row := []string{name}
		for _, f := range r.Dists[i].Size.Fractions() {
			row = append(row, report.F(f, 3))
		}
		t.AddRow(row...)
	}
	return t
}

// RenderResponses renders the Fig. 5 / Fig. 7b panel.
func (r DistResult) RenderResponses() *report.Table {
	labels := []string{"<=2ms", "<=4ms", "<=8ms", "<=16ms", "<=32ms", "<=64ms", "<=128ms", ">128ms"}
	t := report.NewTable("Response time distributions (fractions)", append([]string{"Application"}, labels...)...)
	for i, name := range r.Names {
		row := []string{name}
		for _, f := range r.Dists[i].Response.Fractions() {
			row = append(row, report.F(f, 3))
		}
		t.AddRow(row...)
	}
	return t
}

// RenderInterarrivals renders the Fig. 6 / Fig. 7c panel.
func (r DistResult) RenderInterarrivals() *report.Table {
	labels := []string{"<=1ms", "<=2ms", "<=4ms", "<=8ms", "<=16ms", ">16ms"}
	t := report.NewTable("Inter-arrival time distributions (fractions)", append([]string{"Application"}, labels...)...)
	for i, name := range r.Names {
		row := []string{name}
		for _, f := range r.Dists[i].Interarrival.Fractions() {
			row = append(row, report.F(f, 3))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure renders Fig. 3 as a line chart.
func (r Fig3Result) Figure() *report.Figure {
	f := &report.Figure{
		Title:  "Fig. 3: Throughput vs request size",
		XLabel: "request size",
		YLabel: "MB/s",
	}
	read := report.Series{Name: "Read"}
	write := report.Series{Name: "Write"}
	for _, p := range r.Points {
		f.XTicks = append(f.XTicks, sizeLabel(p.SizeBytes))
		read.Values = append(read.Values, p.ReadMBs)
		write.Values = append(write.Values, p.WriteMBs)
	}
	f.Series = []report.Series{read, write}
	return f
}

// SizeFigure renders the request-size distributions as stacked bars
// (Fig. 4 / Fig. 7a).
func (r DistResult) SizeFigure(title string) *report.Figure {
	f := &report.Figure{Title: title, YLabel: "fraction of requests", XTicks: r.Names}
	labels := stats.NewHistogram(stats.SizeBounds()).Labels(1024, "KB")
	for bi, label := range labels {
		s := report.Series{Name: label}
		for _, d := range r.Dists {
			s.Values = append(s.Values, d.Size.Fractions()[bi])
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// ResponseFigure renders the response-time distributions (Fig. 5 / 7b).
func (r DistResult) ResponseFigure(title string) *report.Figure {
	f := &report.Figure{Title: title, YLabel: "fraction of requests", XTicks: r.Names}
	labels := []string{"<=2ms", "<=4ms", "<=8ms", "<=16ms", "<=32ms", "<=64ms", "<=128ms", ">128ms"}
	for bi, label := range labels {
		s := report.Series{Name: label}
		for _, d := range r.Dists {
			s.Values = append(s.Values, d.Response.Fractions()[bi])
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// InterarrivalFigure renders the inter-arrival distributions (Fig. 6 / 7c).
func (r DistResult) InterarrivalFigure(title string) *report.Figure {
	f := &report.Figure{Title: title, YLabel: "fraction of gaps", XTicks: r.Names}
	labels := []string{"<=1ms", "<=2ms", "<=4ms", "<=8ms", "<=16ms", ">16ms"}
	for bi, label := range labels {
		s := report.Series{Name: label}
		for _, d := range r.Dists {
			s.Values = append(s.Values, d.Interarrival.Fractions()[bi])
		}
		f.Series = append(f.Series, s)
	}
	return f
}
