package experiments

import (
	"context"
	"fmt"

	"emmcio/internal/analysis"
	"emmcio/internal/core"
	"emmcio/internal/paper"
	"emmcio/internal/report"
	"emmcio/internal/runner"
	"emmcio/internal/stats"
	"emmcio/internal/trace"
)

// Fig3Result is the throughput-vs-request-size sweep on the measured device.
type Fig3Result struct {
	Points []core.ThroughputPoint
}

// Fig3 reproduces the Fig. 3 microbenchmark: sweep request sizes from 4 KB
// to 16 MB on the measured-device model (reads stop at 256 KB, the largest
// read in any trace), issuing reqsPerPoint back-to-back requests per point.
// The per-size points run on the env's worker pool.
func Fig3(env *Env, reqsPerPoint int) (Fig3Result, error) {
	timing := MeasuredDeviceTiming()
	pts, err := core.ThroughputSweepContext(env.context(), env.Runner(), core.Scheme4PS,
		core.Options{Timing: &timing}, core.Fig3Sizes(), reqsPerPoint)
	if err != nil {
		return Fig3Result{}, err
	}
	return Fig3Result{Points: pts}, nil
}

// Render returns the Fig. 3 series table.
func (r Fig3Result) Render() *report.Table {
	t := report.NewTable("Fig. 3: Throughput vs request size (measured-device model)",
		"Size", "Read MB/s", "Write MB/s")
	for _, p := range r.Points {
		read := "-"
		if p.ReadMBs > 0 {
			read = report.F(p.ReadMBs, 2)
		}
		t.AddRow(sizeLabel(p.SizeBytes), read, report.F(p.WriteMBs, 2))
	}
	return t
}

func sizeLabel(bytes int) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%dMB", bytes>>20)
	default:
		return fmt.Sprintf("%dKB", bytes>>10)
	}
}

// DistResult carries per-trace histograms for Figs. 4–6 (and Fig. 7's three
// panels for the combo traces).
type DistResult struct {
	Names []string
	Dists []analysis.Distributions
}

// Fig4 builds the request-size distributions of the 18 individual traces.
func Fig4(env *Env) DistResult {
	return distributions(env, paper.IndividualApps)
}

// Fig5 builds the response-time distributions of the 18 individual traces
// (requires replay on the measured device).
func Fig5(env *Env) (DistResult, error) {
	return replayedDistributions(env, paper.IndividualApps)
}

// Fig6 builds the inter-arrival distributions of the 18 individual traces.
func Fig6(env *Env) DistResult {
	return distributions(env, paper.IndividualApps)
}

// Fig7 builds all three distributions for the 7 combo traces.
func Fig7(env *Env) (DistResult, error) {
	return replayedDistributions(env, paper.ComboApps)
}

// distributions computes per-trace histograms without replay, streaming
// each generated trace through an online accumulator on the env's worker
// pool (generation dominates).
func distributions(env *Env, names []string) DistResult {
	// Env streams never fail, so the aggregated error is nil unless the
	// env's context cancels the sweep mid-way.
	dists, _ := runner.MapContext(env.context(), env.Runner(), "distributions", names,
		func(ctx context.Context, _ int, name string) (analysis.Distributions, error) {
			return analysis.DistributionsOfStream(trace.WithContext(ctx, env.Stream(name)))
		})
	return DistResult{Names: names, Dists: dists}
}

// replayedDistributions replays each trace through the §II-C collection
// path on the measured device first, so response times are populated; the
// histograms accumulate online during the replay, nothing is materialized.
func replayedDistributions(env *Env, names []string) (DistResult, error) {
	jobs := make([]ReplayJob, len(names))
	for i, name := range names {
		jobs[i] = ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: MeasuredDeviceOptions(),
			Collect: true, WantStats: true}
	}
	results, err := env.Replays("distributions-replayed", jobs)
	if err != nil {
		return DistResult{}, err
	}
	res := DistResult{Names: names, Dists: make([]analysis.Distributions, len(names))}
	for i := range results {
		res.Dists[i] = results[i].Stats.Dists()
	}
	return res, nil
}

// RenderSizes renders the Fig. 4 / Fig. 7a panel.
func (r DistResult) RenderSizes() *report.Table {
	labels := stats.NewHistogram(stats.SizeBounds()).Labels(1024, "KB")
	t := report.NewTable("Request size distributions (fractions)", append([]string{"Application"}, labels...)...)
	for i, name := range r.Names {
		row := []string{name}
		for _, f := range r.Dists[i].Size.Fractions() {
			row = append(row, report.F(f, 3))
		}
		t.AddRow(row...)
	}
	return t
}

// RenderResponses renders the Fig. 5 / Fig. 7b panel.
func (r DistResult) RenderResponses() *report.Table {
	labels := []string{"<=2ms", "<=4ms", "<=8ms", "<=16ms", "<=32ms", "<=64ms", "<=128ms", ">128ms"}
	t := report.NewTable("Response time distributions (fractions)", append([]string{"Application"}, labels...)...)
	for i, name := range r.Names {
		row := []string{name}
		for _, f := range r.Dists[i].Response.Fractions() {
			row = append(row, report.F(f, 3))
		}
		t.AddRow(row...)
	}
	return t
}

// RenderInterarrivals renders the Fig. 6 / Fig. 7c panel.
func (r DistResult) RenderInterarrivals() *report.Table {
	labels := []string{"<=1ms", "<=2ms", "<=4ms", "<=8ms", "<=16ms", ">16ms"}
	t := report.NewTable("Inter-arrival time distributions (fractions)", append([]string{"Application"}, labels...)...)
	for i, name := range r.Names {
		row := []string{name}
		for _, f := range r.Dists[i].Interarrival.Fractions() {
			row = append(row, report.F(f, 3))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure renders Fig. 3 as a line chart.
func (r Fig3Result) Figure() *report.Figure {
	f := &report.Figure{
		Title:  "Fig. 3: Throughput vs request size",
		XLabel: "request size",
		YLabel: "MB/s",
	}
	read := report.Series{Name: "Read"}
	write := report.Series{Name: "Write"}
	for _, p := range r.Points {
		f.XTicks = append(f.XTicks, sizeLabel(p.SizeBytes))
		read.Values = append(read.Values, p.ReadMBs)
		write.Values = append(write.Values, p.WriteMBs)
	}
	f.Series = []report.Series{read, write}
	return f
}

// SizeFigure renders the request-size distributions as stacked bars
// (Fig. 4 / Fig. 7a).
func (r DistResult) SizeFigure(title string) *report.Figure {
	f := &report.Figure{Title: title, YLabel: "fraction of requests", XTicks: r.Names}
	labels := stats.NewHistogram(stats.SizeBounds()).Labels(1024, "KB")
	for bi, label := range labels {
		s := report.Series{Name: label}
		for _, d := range r.Dists {
			s.Values = append(s.Values, d.Size.Fractions()[bi])
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// ResponseFigure renders the response-time distributions (Fig. 5 / 7b).
func (r DistResult) ResponseFigure(title string) *report.Figure {
	f := &report.Figure{Title: title, YLabel: "fraction of requests", XTicks: r.Names}
	labels := []string{"<=2ms", "<=4ms", "<=8ms", "<=16ms", "<=32ms", "<=64ms", "<=128ms", ">128ms"}
	for bi, label := range labels {
		s := report.Series{Name: label}
		for _, d := range r.Dists {
			s.Values = append(s.Values, d.Response.Fractions()[bi])
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// InterarrivalFigure renders the inter-arrival distributions (Fig. 6 / 7c).
func (r DistResult) InterarrivalFigure(title string) *report.Figure {
	f := &report.Figure{Title: title, YLabel: "fraction of gaps", XTicks: r.Names}
	labels := []string{"<=1ms", "<=2ms", "<=4ms", "<=8ms", "<=16ms", ">16ms"}
	for bi, label := range labels {
		s := report.Series{Name: label}
		for _, d := range r.Dists {
			s.Values = append(s.Values, d.Interarrival.Fractions()[bi])
		}
		f.Series = append(f.Series, s)
	}
	return f
}
