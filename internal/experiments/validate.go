package experiments

import (
	"fmt"
	"math"

	"emmcio/internal/core"
	"emmcio/internal/paper"
	"emmcio/internal/report"
	"emmcio/internal/telemetry"
)

// Check is one validation verdict: a published claim, the measured value,
// and whether it lands inside the reproduction tolerance.
type Check struct {
	Claim    string
	Paper    string
	Measured string
	Pass     bool
}

// Validate runs the reproduction's acceptance checklist: every published
// claim this repository targets, with its tolerance, in one pass/fail
// table. It is the programmatic form of EXPERIMENTS.md.
func Validate(env *Env) ([]Check, error) {
	var checks []Check
	add := func(claim, paperVal, measured string, pass bool) {
		checks = append(checks, Check{claim, paperVal, measured, pass})
	}

	// --- Table III ---
	t3 := TableIII(env)
	worstWr := 0.0
	for i := range t3.Measured {
		if d := math.Abs(t3.Measured[i].WriteReqPct - t3.Published[i].WriteReqPct); d > worstWr {
			worstWr = d
		}
	}
	add("Table III write-request % (all 25 traces)", "±3 points",
		fmt.Sprintf("worst |Δ| = %.1f", worstWr), worstWr <= 3)

	// --- Fig. 4 / Characteristic 2 ---
	f4 := Fig4(env)
	inBand := 0
	for i, name := range f4.Names {
		if paper.NotP4Majority[name] {
			continue
		}
		p4 := f4.Dists[i].Single4KFraction()
		if p4 >= paper.Char2MinP4-0.03 && p4 <= paper.Char2MaxP4+0.03 {
			inBand++
		}
	}
	add("Characteristic 2: 4 KB majority band", "15/18 traces in 44.9–57.4%",
		fmt.Sprintf("%d/18 in band", inBand), inBand >= 14)

	// --- Table IV ---
	t4, err := TableIV(env)
	if err != nil {
		return nil, err
	}
	noWait := 0
	worstSpatial, worstTemporal := 0.0, 0.0
	for i := range t4.Measured[:18] {
		if t4.Measured[i].NoWaitPct >= 63 {
			noWait++
		}
	}
	for i := range t4.Measured {
		if d := math.Abs(t4.Measured[i].SpatialPct - t4.Published[i].SpatialPct); d > worstSpatial {
			worstSpatial = d
		}
		if d := math.Abs(t4.Measured[i].TemporalPct - t4.Published[i].TemporalPct); d > worstTemporal {
			worstTemporal = d
		}
	}
	add("Characteristic 3: NoWait >= 63%", "15/18 traces",
		fmt.Sprintf("%d/18 traces", noWait), noWait >= 12)
	add("Table IV spatial locality", "±6 points",
		fmt.Sprintf("worst |Δ| = %.1f", worstSpatial), worstSpatial <= 6)
	add("Table IV temporal locality", "±7 points",
		fmt.Sprintf("worst |Δ| = %.1f", worstTemporal), worstTemporal <= 7)

	// --- Fig. 6 / Characteristic 6 ---
	f6 := Fig6(env)
	fatTail := 0
	for _, d := range f6.Dists {
		fr := d.Interarrival.Fractions()
		if fr[len(fr)-1] > 0.20 {
			fatTail++
		}
	}
	add("Characteristic 6: >20% of gaps above 16 ms", "10/18 traces",
		fmt.Sprintf("%d/18 traces", fatTail), fatTail >= 9 && fatTail <= 11)

	// --- Fig. 3 ---
	f3, err := Fig3(env, 4)
	if err != nil {
		return nil, err
	}
	mono := true
	for i := 1; i < len(f3.Points); i++ {
		if f3.Points[i].WriteMBs < f3.Points[i-1].WriteMBs*0.98 {
			mono = false
		}
	}
	add("Fig. 3: throughput rises with request size", "monotone; read > write",
		fmt.Sprintf("monotone=%v", mono), mono)

	// --- Case study (Figs. 8, 9) ---
	cs, err := CaseStudy(env)
	if err != nil {
		return nil, err
	}
	allWin := true
	utilExact := true
	for _, row := range cs.Rows {
		if row.MRTMs[2] >= row.MRTMs[0] {
			allWin = false
		}
		if row.Util[2] != 1.0 {
			utilExact = false
		}
	}
	add("Fig. 8: HPS beats 4PS on every trace", "18/18",
		fmt.Sprintf("allWin=%v", allWin), allWin)
	best := cs.Best()
	add("Fig. 8: largest reduction", "Booting (−86%)",
		fmt.Sprintf("%s (−%.1f%%)", best.Name, best.MRTReductionVs4PS()*100),
		best.Name == paper.Fig8BestApp)
	worst := cs.Worst()
	add("Fig. 8: smallest reduction", "−24% (Movie)",
		fmt.Sprintf("−%.1f%% (%s)", worst.MRTReductionVs4PS()*100, worst.Name),
		worst.MRTReductionVs4PS() >= 0.10)
	add("Fig. 9: HPS utilization equals 4PS", "1.0 on all 18",
		fmt.Sprintf("exact=%v", utilExact), utilExact)
	avgGain := cs.AverageUtilGain()
	add("Fig. 9: average HPS gain vs 8PS", "+13.1%",
		fmt.Sprintf("+%.1f%%", avgGain*100), math.Abs(avgGain-paper.Fig9AverageGain) <= 0.06)

	// --- §II-C ---
	oh, err := TracerOverhead(env, paper.Twitter)
	if err != nil {
		return nil, err
	}
	got := oh.Overheads[0].RequestOverhead
	add("BIOtracer overhead", "~2%",
		fmt.Sprintf("%.2f%%", got*100), math.Abs(got-0.02) <= 0.006)

	// --- Observability: the trace instrument must see every request ---
	// Replay one Fig. 8 trace with telemetry attached and require that the
	// span count and request counters agree exactly with the trace length —
	// the instrument can neither drop nor invent requests.
	obsTr := env.Trace(paper.Twitter)
	obsReg := telemetry.NewRegistry()
	obsTc := telemetry.NewTracer(8 * len(obsTr.Reqs))
	obsDev, err := core.NewDevice(core.SchemeHPS, core.CaseStudyOptions())
	if err != nil {
		return nil, err
	}
	if _, err := core.ReplayObserved(obsDev, core.SchemeHPS, obsTr, obsReg, obsTc); err != nil {
		return nil, err
	}
	spans := obsTc.CountSpans("core", "request")
	counted := obsReg.Counter("core_requests_total", telemetry.L("op", "read")).Value() +
		obsReg.Counter("core_requests_total", telemetry.L("op", "write")).Value()
	obsOK := spans == int64(len(obsTr.Reqs)) && counted == int64(len(obsTr.Reqs)) && obsTc.Dropped() == 0
	add("Telemetry: one span per replayed request", fmt.Sprintf("%d requests", len(obsTr.Reqs)),
		fmt.Sprintf("%d spans, %d counted, %d dropped", spans, counted, obsTc.Dropped()), obsOK)

	// --- The six characteristics ---
	findings, err := Characteristics(env)
	if err != nil {
		return nil, err
	}
	hold := 0
	for _, f := range findings {
		if f.Holds {
			hold++
		}
	}
	add("All six characteristics hold", "6/6",
		fmt.Sprintf("%d/6", hold), hold == 6)

	return checks, nil
}

// RenderChecks renders the validation verdicts.
func RenderChecks(checks []Check) *report.Table {
	t := report.NewTable("Reproduction validation (paper vs measured)",
		"Check", "Paper", "Measured", "Verdict")
	for _, c := range checks {
		v := "PASS"
		if !c.Pass {
			v = "FAIL"
		}
		t.AddRow(c.Claim, c.Paper, c.Measured, v)
	}
	return t
}
