package experiments

import (
	"emmcio/internal/core"
	"emmcio/internal/paper"
	"emmcio/internal/reliability"
	"emmcio/internal/report"
	"emmcio/internal/storage"
)

// AgingPoint is one wear level of the read-latency aging curve.
type AgingPoint struct {
	// LifeFraction is consumed endurance (1.0 = the rated P/E budget).
	LifeFraction float64
	// MRTMs is the replayed mean response time at this wear.
	MRTMs float64
	// RetryFactor is the model's expected read-attempt multiplier.
	RetryFactor float64
	// FailureProb is the first-attempt ECC-overflow probability.
	FailureProb float64
}

// Aging replays a read-heavy trace on devices pre-aged to increasing wear
// levels: as the raw bit error rate climbs, ECC retries stretch read
// latency — the performance face of the lifetime argument behind Fig. 9
// (a scheme that erases more reaches this regime sooner).
func Aging(env *Env, name string, lifeFractions []float64) ([]AgingPoint, error) {
	if name == "" {
		name = paper.Movie // the most read-heavy trace (94.6% reads)
	}
	if len(lifeFractions) == 0 {
		lifeFractions = []float64{0, 0.5, 1.0, 1.25, 1.5}
	}
	model := reliability.Default() // deterministic expected values; safe to share
	jobs := make([]ReplayJob, len(lifeFractions))
	for i, lf := range lifeFractions {
		jobs[i] = ReplayJob{
			Trace:  name,
			Scheme: core.Scheme4PS,
			Device: func() (storage.Device, error) {
				var dev storage.Device
				var err error
				if env.Fork != nil {
					// Fork the archived aged snapshot as the base instead of
					// rebuilding fresh flash per wear level.
					dev, err = env.Fork()
				} else {
					opt := core.CaseStudyOptions()
					opt.Reliability = model
					dev, err = core.NewDevice(core.Scheme4PS, opt)
				}
				if err != nil {
					return nil, err
				}
				// Pre-age pool 0: average PE = lifeFraction × endurance.
				blocks := int64(dev.Wear(0).Blocks)
				dev.AddArtificialWear(0, int64(lf*model.Endurance*float64(blocks)))
				return dev, nil
			},
		}
	}
	results, err := env.Replays("aging", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]AgingPoint, len(lifeFractions))
	for i, lf := range lifeFractions {
		pe := lf * model.Endurance
		out[i] = AgingPoint{
			LifeFraction: lf,
			MRTMs:        results[i].Metrics.MeanResponseNs / 1e6,
			RetryFactor:  model.ReadLatencyFactor(pe),
			FailureProb:  model.FailureProbability(pe),
		}
	}
	return out, nil
}

// RenderAging renders the curve.
func RenderAging(name string, pts []AgingPoint) *report.Table {
	t := report.NewTable("Aging: read-retry latency as endurance is consumed ("+name+", 4PS)",
		"Life consumed", "MRT (ms)", "Read attempts", "ECC overflow prob")
	for _, p := range pts {
		t.AddRow(report.Pct(p.LifeFraction, 0)+"%", report.F(p.MRTMs, 2),
			report.F(p.RetryFactor, 3), report.F(p.FailureProb, 6))
	}
	return t
}
