package experiments

import (
	"context"
	"fmt"

	"emmcio/internal/core"
	"emmcio/internal/paper"
	"emmcio/internal/report"
	"emmcio/internal/runner"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// The aged study: replay traces on a device that already has history. The
// slow path ages a fresh device per replay by running a prep workload; the
// fast path forks one archived snapshot of that same prep (Env.Fork, fed
// by the device store). Both paths end at the same device state — sealed
// snapshots are byte-deterministic — so the study's rendered table is
// bit-identical either way, which is the contract the snapshot store's
// existence rests on.

// AgePrep describes the aging prep an age job replays onto fresh flash
// before the device is sealed: which trace, how many back-to-back
// sessions, on what scheme and device options.
type AgePrep struct {
	// Trace names the prep workload (default: the write-heavy Twitter
	// trace, which actually wears the flash).
	Trace string
	// Sessions repeats the prep back to back (default 2).
	Sessions int
	// Scheme is the partition scheme the device ages under (default 4PS).
	Scheme core.Scheme
	// Options configures the device (zero value: core.CaseStudyOptions).
	Options core.Options
	// optionsSet distinguishes an explicit zero Options from the default.
	optionsSet bool
}

// DefaultAgePrep is the repository's canonical aging prep.
func DefaultAgePrep() AgePrep {
	return AgePrep{Trace: paper.Twitter, Sessions: 2, Scheme: core.Scheme4PS,
		Options: core.CaseStudyOptions(), optionsSet: true}
}

// normalize fills defaults in place.
func (p *AgePrep) normalize() {
	if p.Trace == "" {
		p.Trace = paper.Twitter
	}
	if p.Sessions <= 0 {
		p.Sessions = 2
	}
	if !p.optionsSet && p.Options == (core.Options{}) {
		p.Options = core.CaseStudyOptions()
	}
}

// SetOptions records an explicit device configuration (even a zero one).
func (p *AgePrep) SetOptions(opt core.Options) {
	p.Options = opt
	p.optionsSet = true
}

// AgeDevice replays the prep workload onto fresh flash and returns the
// worn device — the expensive once-per-store operation whose sealed result
// every fork then reuses. The device's telemetry is left detached so the
// aged state does not depend on who observed the aging.
func AgeDevice(env *Env, p AgePrep) (storage.Device, error) {
	p.normalize()
	dev, err := core.NewDevice(p.Scheme, p.Options)
	if err != nil {
		return nil, err
	}
	st := env.Stream(p.Trace)
	if p.Sessions > 1 {
		st = trace.Repeat(st, p.Sessions, 1_000_000_000)
	}
	if _, err := core.ReplayStreamSinkContext(env.context(), dev, p.Scheme, st, nil, nil, nil); err != nil {
		return nil, fmt.Errorf("experiments: aging prep %s x%d: %w", p.Trace, p.Sessions, err)
	}
	return dev, nil
}

// AgedPoint is one trace replayed on a fork of the aged device.
type AgedPoint struct {
	Trace string
	// MRTMs is the mean response time on the worn device.
	MRTMs float64
	// NoWaitPct is the fraction of requests served without queueing.
	NoWaitPct float64
	// GCStallMs is foreground GC time charged to requests — the metric wear
	// moves first.
	GCStallMs float64
	// FaultDraws is the device's injector position after the replay (0 with
	// faults off): the fork-determinism witness, equal across fast and slow
	// paths when both started from the same archived draw position.
	FaultDraws int64
}

// AgedStudy replays each trace on its own aged device: a fork of the
// archived snapshot when Env.Fork is set (the fast path), a freshly re-aged
// device per trace otherwise (the slow path, AgeDevice per point). Results
// are in roster order and bit-identical between paths and at any worker
// width — every point owns a private device either way.
func AgedStudy(env *Env, p AgePrep, traces []string) ([]AgedPoint, error) {
	p.normalize()
	if len(traces) == 0 {
		traces = append([]string(nil), paper.IndividualApps...)
	}
	fork := env.Fork
	if fork == nil {
		fork = func() (storage.Device, error) { return AgeDevice(env, p) }
	}
	return runner.MapContext(env.context(), env.Runner(), "aged", traces,
		func(ctx context.Context, _ int, name string) (AgedPoint, error) {
			dev, err := fork()
			if err != nil {
				return AgedPoint{}, err
			}
			st := trace.ShiftStream(env.Stream(name), dev.LastActivity()+1_000_000_000)
			m, err := core.ReplayStreamObservedContext(ctx, dev, p.Scheme, st, env.Telemetry, env.Tracer)
			if err != nil {
				return AgedPoint{}, err
			}
			return AgedPoint{
				Trace:      name,
				MRTMs:      m.MeanResponseNs / 1e6,
				NoWaitPct:  m.NoWaitRatio * 100,
				GCStallMs:  float64(m.GCStallNs) / 1e6,
				FaultDraws: dev.FaultDraws(),
			}, nil
		})
}

// RenderAgedStudy renders the study.
func RenderAgedStudy(prep AgePrep, pts []AgedPoint) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Aged replay: traces on a device worn by %s x%d (%s)",
			prep.Trace, prep.Sessions, prep.Scheme),
		"Trace", "MRT (ms)", "No-wait %", "GC stall (ms)")
	for _, p := range pts {
		t.AddRow(p.Trace, report.F(p.MRTMs, 3), report.F(p.NoWaitPct, 1), report.F(p.GCStallMs, 2))
	}
	return t
}
