package experiments

import (
	"context"

	"emmcio/internal/analysis"
	"emmcio/internal/biotracer"
	"emmcio/internal/core"
	"emmcio/internal/runner"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// ReplayJob is one entry of a declarative sweep plan: a named trace
// replayed once on its own fresh device. Every experiment in this package
// builds a []ReplayJob and hands it to Env.Replays; nothing replays through
// bespoke loops anymore.
//
// Jobs pull their requests from a trace.Stream (Env.Stream), so a replay
// holds no private trace copy: memory is the device plus whatever the job
// explicitly asks to materialize (WantTrace) or accumulate (WantStats).
type ReplayJob struct {
	// Trace names the workload (resolved through Env.Stream, so generation
	// is cached, deduplicated, and bounded across concurrent jobs).
	Trace string
	// Scheme and Options configure the device (core.NewDevice) unless
	// Device overrides construction.
	Scheme  core.Scheme
	Options core.Options
	// Prepare, when non-nil, transforms a private materialized copy of the
	// job's trace before the replay — for transforms that need the whole
	// trace in hand (session doubling). Prefer PrepareStream when the
	// transform is per-request.
	Prepare func(*trace.Trace) *trace.Trace
	// PrepareStream, when non-nil, wraps the job's request stream
	// (filtering, arrival scaling, session repetition) without
	// materializing anything. Applied after Prepare if both are set.
	PrepareStream func(trace.Stream) trace.Stream
	// Device, when non-nil, builds the device instead of core.NewDevice —
	// for custom emmc.Configs or pre-aged devices. It must return a fresh
	// device on every call.
	Device func() (storage.Device, error)
	// Policy selects host-side scheduling (core.ReplayScheduledStream)
	// when not SchedFIFO. Scheduled replays build their own device: Device
	// and Collect are ignored.
	Policy core.SchedPolicy
	// Collect routes the replay through biotracer.CollectStream (the §II-C
	// trace-collection path) instead of the plain streaming replay. The
	// result carries the Overhead instead of Metrics.
	Collect bool
	// WantTrace materializes the replayed request sequence into the
	// result's Trace — only for consumers that genuinely need the
	// requests; everything statistical should use WantStats instead.
	WantTrace bool
	// WantStats feeds every completed request into an online
	// analysis.Accumulator exposed as the result's Stats: Table III/IV
	// columns, the Figs. 4–7 histograms and the §III-C localities in one
	// pass, no materialized trace.
	WantStats bool
}

// ReplayResult is one job's outcome. Metrics is set for plain and scheduled
// replays, Overhead for Collect jobs. Trace is the replayed request
// sequence (nil unless the job set WantTrace), Stats the online
// accumulator (nil unless WantStats). Device is the device the job ran on
// (nil for scheduled replays), so callers can read wear, FTL, or cache
// state.
type ReplayResult struct {
	Metrics  core.Metrics
	Overhead biotracer.Overhead
	Trace    *trace.Trace
	Stats    *analysis.Accumulator
	Device   storage.Device
}

// Runner returns the env's sweep runner: Workers wide, observing the env's
// telemetry registry.
func (e *Env) Runner() *runner.Runner {
	return runner.New(e.Workers).Observe(e.Telemetry)
}

// Replays executes the plan on the env's worker pool and returns results in
// plan order — bit-identical at any pool width, since each job replays its
// own stream on its own fresh device. The env's Telemetry and Tracer are
// attached to every device-backed replay, observed and collection paths
// alike. The sweep is bounded by Env.Ctx; use ReplaysContext to pass a
// call-scoped context instead.
func (e *Env) Replays(sweep string, jobs []ReplayJob) ([]ReplayResult, error) {
	return e.ReplaysContext(e.context(), sweep, jobs)
}

// ReplaysContext is Replays bounded by an explicit context: once ctx is
// done, queued jobs fail fast and running replays abort between events, so
// a sweep cancels in bounded time regardless of plan size.
func (e *Env) ReplaysContext(ctx context.Context, sweep string, jobs []ReplayJob) ([]ReplayResult, error) {
	return runner.MapContext(ctx, e.Runner(), sweep, jobs, func(ctx context.Context, _ int, j ReplayJob) (ReplayResult, error) {
		return e.replay(ctx, j)
	})
}

func (e *Env) replay(ctx context.Context, j ReplayJob) (ReplayResult, error) {
	if e.Faults != nil && j.Options.Faults == nil && j.Device == nil {
		j.Options.Faults = e.Faults
	}
	if e.Backend != "" && j.Options.Backend == "" && j.Device == nil {
		j.Options.Backend = e.Backend
		j.Options.UFSQueues = e.UFSQueues
		j.Options.UFSQueueDepth = e.UFSQueueDepth
		j.Options.UFSBoosterBytes = e.UFSBoosterBytes
	}
	var st trace.Stream
	if j.Prepare != nil {
		// Whole-trace transforms get a private materialized copy; this is
		// the only sweep path that still clones.
		st = trace.FromSlice(j.Prepare(e.Trace(j.Trace)))
	} else {
		st = e.Stream(j.Trace)
	}
	if j.PrepareStream != nil {
		st = j.PrepareStream(st)
	}

	var res ReplayResult
	var sinks []func(trace.Request) error
	if j.WantStats {
		res.Stats = analysis.NewAccumulator(st.Name())
		sinks = append(sinks, func(r trace.Request) error { res.Stats.Add(r); return nil })
	}
	if j.WantTrace {
		res.Trace = &trace.Trace{Name: st.Name()}
		sinks = append(sinks, func(r trace.Request) error {
			res.Trace.Reqs = append(res.Trace.Reqs, r)
			return nil
		})
	}
	var sink func(trace.Request) error
	switch len(sinks) {
	case 1:
		sink = sinks[0]
	case 2:
		sink = func(r trace.Request) error {
			for _, s := range sinks {
				if err := s(r); err != nil {
					return err
				}
			}
			return nil
		}
	}

	if j.Policy != core.SchedFIFO {
		m, err := core.ReplayScheduledStreamContext(ctx, j.Scheme, j.Options, st, j.Policy, sink)
		res.Metrics = m
		if res.Trace != nil {
			// The sink saw dispatch order; restore arrival order.
			res.Trace.SortByArrival()
		}
		return res, err
	}
	var dev storage.Device
	var err error
	switch {
	case j.Device != nil:
		dev, err = j.Device()
	case e.Fork != nil && !j.Collect:
		// Fork the archived aged device instead of building fresh flash.
		dev, err = e.Fork()
		if err == nil {
			if fc := j.Options.Faults; fc != nil {
				err = dev.SetFaultConfig(fc)
			}
		}
	default:
		dev, err = core.NewDevice(j.Scheme, j.Options)
	}
	if err != nil {
		return ReplayResult{}, err
	}
	if last := dev.LastActivity(); last > 0 {
		// The device carries replayed history (an env.Fork or a custom
		// builder handing out a fork): resume after it, the same idle-gap
		// shift emmcsim's -load applies. Fresh devices are untouched.
		st = trace.ShiftStream(st, last+1_000_000_000)
	}
	res.Device = dev
	if j.Collect {
		if e.Telemetry != nil || e.Tracer != nil {
			dev.SetTelemetry(e.Telemetry, e.Tracer)
		}
		// The collection loop knows nothing about contexts; a ctx-bounded
		// stream cancels it between requests all the same.
		res.Overhead, err = biotracer.CollectStream(dev, trace.WithContext(ctx, st), sink)
		return res, err
	}
	res.Metrics, err = core.ReplayStreamSinkContext(ctx, dev, j.Scheme, st, e.Telemetry, e.Tracer, sink)
	return res, err
}
