package experiments

import (
	"emmcio/internal/biotracer"
	"emmcio/internal/core"
	"emmcio/internal/emmc"
	"emmcio/internal/runner"
	"emmcio/internal/trace"
)

// ReplayJob is one entry of a declarative sweep plan: a named trace
// replayed once on its own fresh device. Every experiment in this package
// builds a []ReplayJob and hands it to Env.Replays; nothing replays through
// bespoke loops anymore.
type ReplayJob struct {
	// Trace names the workload (resolved through Env.Trace, so generation
	// is cached and deduplicated across concurrent jobs).
	Trace string
	// Scheme and Options configure the device (core.NewDevice) unless
	// Device overrides construction.
	Scheme  core.Scheme
	Options core.Options
	// Prepare, when non-nil, transforms the job's private trace copy before
	// the replay (session doubling, arrival scaling, request filtering).
	Prepare func(*trace.Trace) *trace.Trace
	// Device, when non-nil, builds the device instead of core.NewDevice —
	// for custom emmc.Configs or pre-aged devices. It must return a fresh
	// device on every call.
	Device func() (*emmc.Device, error)
	// Policy selects host-side scheduling (core.ReplayScheduled) when not
	// SchedFIFO. Scheduled replays build their own device: Device and
	// Collect are ignored.
	Policy core.SchedPolicy
	// Collect routes the replay through biotracer.Collect (the §II-C
	// trace-collection path) instead of core.ReplayObserved. The result
	// carries the Overhead instead of Metrics.
	Collect bool
}

// ReplayResult is one job's outcome. Metrics is set for plain and scheduled
// replays, Overhead for Collect jobs. Trace is the job's private copy with
// replayed timestamps filled in; Device is the device the job ran on (nil
// for scheduled replays), so callers can read wear, FTL, or cache state.
type ReplayResult struct {
	Metrics  core.Metrics
	Overhead biotracer.Overhead
	Trace    *trace.Trace
	Device   *emmc.Device
}

// Runner returns the env's sweep runner: Workers wide, observing the env's
// telemetry registry.
func (e *Env) Runner() *runner.Runner {
	return runner.New(e.Workers).Observe(e.Telemetry)
}

// Replays executes the plan on the env's worker pool and returns results in
// plan order — bit-identical at any pool width, since each job replays a
// private trace copy on its own fresh device. The env's Telemetry and
// Tracer are attached to every device-backed replay, observed and
// collection paths alike.
func (e *Env) Replays(sweep string, jobs []ReplayJob) ([]ReplayResult, error) {
	return runner.Map(e.Runner(), sweep, jobs, func(_ int, j ReplayJob) (ReplayResult, error) {
		return e.replay(j)
	})
}

func (e *Env) replay(j ReplayJob) (ReplayResult, error) {
	if e.Faults != nil && j.Options.Faults == nil && j.Device == nil {
		j.Options.Faults = e.Faults
	}
	tr := e.Trace(j.Trace)
	if j.Prepare != nil {
		tr = j.Prepare(tr)
	}
	if j.Policy != core.SchedFIFO {
		m, err := core.ReplayScheduled(j.Scheme, j.Options, tr, j.Policy)
		return ReplayResult{Metrics: m, Trace: tr}, err
	}
	var dev *emmc.Device
	var err error
	if j.Device != nil {
		dev, err = j.Device()
	} else {
		dev, err = core.NewDevice(j.Scheme, j.Options)
	}
	if err != nil {
		return ReplayResult{}, err
	}
	res := ReplayResult{Trace: tr, Device: dev}
	if j.Collect {
		if e.Telemetry != nil || e.Tracer != nil {
			dev.SetTelemetry(e.Telemetry, e.Tracer)
		}
		res.Overhead, err = biotracer.Collect(dev, tr)
		return res, err
	}
	res.Metrics, err = core.ReplayObserved(dev, j.Scheme, tr, e.Telemetry, e.Tracer)
	return res, err
}
