package experiments

import (
	"emmcio/internal/core"
	"emmcio/internal/flash"
	"emmcio/internal/paper"
	"emmcio/internal/report"
	"emmcio/internal/trace"
)

// Implication 1 warns against adding an external SDcard for parallelism:
// "the performance of the eMMC on the Nexus 5 is roughly triple of the best
// performance tested from 8 SDcards", so moving part of the workload to the
// card slows those requests more than the parallelism gains. This
// experiment splits each trace between the internal eMMC and a 3×-slower
// SDcard and compares against the eMMC serving everything.

// SDCardSlowdown matches the paper's "roughly triple" observation.
const SDCardSlowdown = 3

// SDCardTiming derives the card's latency model from the measured device.
func SDCardTiming() flash.Timing {
	t := MeasuredDeviceTiming()
	per := make(map[int]flash.OpTiming, len(t.PerPage))
	for sz, ot := range t.PerPage {
		per[sz] = flash.OpTiming{ReadNs: ot.ReadNs * SDCardSlowdown, ProgramNs: ot.ProgramNs * SDCardSlowdown}
	}
	t.PerPage = per
	t.TransferNsPerByte *= SDCardSlowdown
	t.CmdOverheadNs *= SDCardSlowdown
	t.RequestOverheadNs *= SDCardSlowdown
	return t
}

// SDCardRow is one trace's outcome.
type SDCardRow struct {
	Name string
	// EMMCOnlyMRTMs: the whole trace on the internal device.
	EMMCOnlyMRTMs float64
	// SplitMRTMs: media-sized requests (>= 64 KB) moved to the SDcard.
	SplitMRTMs float64
	// SDSharePct is the fraction of requests the card served.
	SDSharePct float64
}

// Implication1SDCard runs the comparison. The split policy sends large
// (>= 64 KB, media-like) requests to the card, the natural way users offload
// storage; both devices serve their streams concurrently.
func Implication1SDCard(env *Env, names ...string) ([]SDCardRow, error) {
	if len(names) == 0 {
		names = []string{paper.Music, paper.CameraVideo, paper.Facebook}
	}
	// Split policy: big requests to the card, the rest stays internal. The
	// splits are stream filters — neither side materializes its share.
	splitBy := func(suffix string, keep func(r trace.Request) bool) func(trace.Stream) trace.Stream {
		return func(st trace.Stream) trace.Stream {
			return trace.Named(trace.FilterStream(st, keep), st.Name()+suffix)
		}
	}
	sdTiming := SDCardTiming()
	sdOpt := MeasuredDeviceOptions()
	sdOpt.Timing = &sdTiming
	jobs := make([]ReplayJob, 0, 3*len(names))
	for _, name := range names {
		jobs = append(jobs,
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: MeasuredDeviceOptions()},
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: MeasuredDeviceOptions(),
				PrepareStream: splitBy("-emmc", func(r trace.Request) bool { return r.Size < 64*1024 })},
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: sdOpt,
				PrepareStream: splitBy("-sdcard", func(r trace.Request) bool { return r.Size >= 64*1024 })})
	}
	results, err := env.Replays("sdcard", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]SDCardRow, len(names))
	for i, name := range names {
		whole, intern, card := results[3*i], results[3*i+1], results[3*i+2]
		total := whole.Metrics.Served
		// Combined mean response across both streams.
		sum := intern.Metrics.MeanResponseNs*float64(intern.Metrics.Served) +
			card.Metrics.MeanResponseNs*float64(card.Metrics.Served)
		out[i] = SDCardRow{
			Name:          name,
			EMMCOnlyMRTMs: whole.Metrics.MeanResponseNs / 1e6,
			SplitMRTMs:    sum / float64(total) / 1e6,
			SDSharePct:    float64(card.Metrics.Served) / float64(total) * 100,
		}
	}
	return out, nil
}

// RenderSDCard renders the comparison.
func RenderSDCard(rows []SDCardRow) *report.Table {
	t := report.NewTable("Implication 1: offloading media to a 3x-slower external SDcard",
		"Trace", "eMMC-only MRT(ms)", "Split MRT(ms)", "SDcard share %")
	for _, r := range rows {
		t.AddRow(r.Name, report.F(r.EMMCOnlyMRTMs, 2), report.F(r.SplitMRTMs, 2), report.F(r.SDSharePct, 1))
	}
	return t
}
