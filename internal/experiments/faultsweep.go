package experiments

import (
	"context"
	"fmt"

	"emmcio/internal/core"
	"emmcio/internal/faults"
	"emmcio/internal/paper"
	"emmcio/internal/reliability"
	"emmcio/internal/report"
	"emmcio/internal/rng"
	"emmcio/internal/runner"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// FaultPoint is one (fault rate, scheme) cell of the fault-ramp sweep.
type FaultPoint struct {
	// Rate is the fault-probability multiplier (0 = perfect hardware).
	Rate   float64
	Scheme core.Scheme
	// MRTMs is the replayed mean response time, fault recovery included.
	MRTMs float64
	// SpaceUtil is the paper's §V space metric; retirements shrink the pool
	// but waste is what moves it.
	SpaceUtil float64
	// Fault outcome totals for the replay.
	ProgramFaults int64
	EraseFaults   int64
	ReadFaults    int64
	RetiredBlocks int64
	// RecoveryMs is read-recovery time charged to the timeline.
	RecoveryMs float64
	// Err is non-empty when the device died mid-replay (ENOSPC from a
	// shrunk-to-nothing pool, unrecoverable read) — at high rates that is a
	// result, not a sweep failure.
	Err string
}

// faultSweepSessions is how many back-to-back trace sessions each cell
// replays: one session of the shrunk device fits entirely in flash, so GC
// (and with it the erase-fault path) only engages when the trace repeats.
const faultSweepSessions = 3

// FaultSweep replays one trace on deeply-aged 4PS/8PS/HPS devices while the
// fault-injection rate ramps, measuring how each page-size organization
// degrades when the hardware starts failing: MRT absorbs recovery latency
// and GC-amplified relocation, and grown bad blocks eat the free pool. The
// devices are pre-aged to their full rated endurance so the wear-dependent
// fault curves are in their steep region — the Fig. 9 endurance argument,
// continued past the point where the paper's fault-free simulator stops.
//
// The sweep raises EraseFailBase 10x over the package default: a replay
// programs two orders of magnitude more pages than it erases blocks, so at
// the default base the erase-fault path would not resolve above zero at
// sweep-length timescales.
//
// Determinism: each job owns a private injector seeded from (seed, job
// index), so results are bit-identical at any worker count.
func FaultSweep(env *Env, name string, seed uint64, rates []float64) ([]FaultPoint, error) {
	if name == "" {
		name = paper.Twitter // write-heavy: exercises program/erase faults
	}
	if len(rates) == 0 {
		rates = []float64{0, 0.1, 0.2, 0.5, 1}
	}
	model := reliability.Default()
	type cell struct {
		rate   float64
		scheme core.Scheme
		seed   uint64
	}
	var plan []cell
	for _, rate := range rates {
		for _, s := range core.Schemes {
			mix := seed + uint64(len(plan))
			plan = append(plan, cell{rate: rate, scheme: s, seed: rng.SplitMix64(&mix)})
		}
	}
	// Errors are captured per point, not aggregated: a device dying at rate
	// 4 is the measurement, not a reason to lose the rest of the sweep.
	return runner.MapContext(env.context(), env.Runner(), "faultsweep", plan, func(ctx context.Context, _ int, c cell) (FaultPoint, error) {
		pt := FaultPoint{Rate: c.rate, Scheme: c.scheme}
		var dev storage.Device
		var err error
		if env.Fork != nil {
			// Fork the archived aged snapshot once per cell instead of
			// rebuilding and re-aging fresh flash 15 times.
			dev, err = env.Fork()
		} else {
			opt := core.CaseStudyOptions()
			opt.Reliability = model
			// Shrink the device so GC pressure (and thus erase/program
			// traffic) is realistic within one trace replay, matching the
			// gcpressure sweep's regime.
			opt.ScaleBlocks = gcPressureScaleBlocks
			opt.ScalePages = gcPressureScalePages
			dev, err = core.NewDevice(c.scheme, opt)
		}
		if err != nil {
			return pt, err // config bug: fail the sweep loudly
		}
		// Arm the cell's fault regime after construction. SetFaultConfig
		// hands the device a fresh injector at draw 0 — exactly what a
		// construction-time config would have produced — which is what lets
		// one faultless aged device serve every (rate, seed) cell.
		if c.rate > 0 {
			if err := dev.SetFaultConfig(&faults.Config{
				Seed:          c.seed,
				Rate:          c.rate,
				EraseFailBase: 10 * faults.DefaultEraseFailBase,
				Model:         model,
			}); err != nil {
				return pt, err
			}
		}
		// Pre-age every pool to rated endurance: the steep region of the
		// wear curves, where real devices grow bad blocks. Forks get the
		// same top-up on top of their replayed wear.
		planes := dev.Geometry().Planes()
		for pool, spec := range dev.Pools() {
			blocks := int64(spec.BlocksPerPlane * planes)
			dev.AddArtificialWear(pool, int64(model.Endurance*float64(blocks)))
		}
		st := trace.Repeat(env.Stream(name), faultSweepSessions, 1_000_000_000)
		if env.Fork != nil {
			st = trace.ShiftStream(st, dev.LastActivity()+1_000_000_000)
		}
		m, err := core.ReplayStreamObservedContext(ctx, dev, c.scheme, st, env.Telemetry, env.Tracer)
		if err != nil {
			if ctx.Err() != nil {
				// Cancellation is a sweep abort, not a device-death data point.
				return pt, err
			}
			pt.Err = err.Error()
		}
		pt.MRTMs = m.MeanResponseNs / 1e6
		pt.SpaceUtil = m.SpaceUtilization
		pt.ProgramFaults = m.ProgramFaults
		pt.EraseFaults = m.EraseFaults
		pt.ReadFaults = m.ReadFaults
		pt.RetiredBlocks = m.RetiredBlocks
		pt.RecoveryMs = float64(m.RecoveryNs) / 1e6
		if err != nil {
			// The partial replay's counters are gone with the error; report
			// what the device accumulated before dying.
			fs := dev.FTLStats()
			dm := dev.Metrics()
			pt.ProgramFaults = fs.ProgramFaults
			pt.EraseFaults = fs.EraseFaults
			pt.RetiredBlocks = fs.RetiredBlocks
			pt.ReadFaults = dm.ReadFaults
			pt.RecoveryMs = float64(dm.RecoveryNs) / 1e6
		}
		return pt, nil
	})
}

// RenderFaultSweep renders the ramp.
func RenderFaultSweep(name string, pts []FaultPoint) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Fault ramp: %s on devices aged to rated endurance", name),
		"Rate", "Scheme", "MRT(ms)", "SpaceUtil", "PgmFail", "ErsFail", "RdFail", "Retired", "Recovery(ms)", "Outcome")
	for _, p := range pts {
		outcome := "ok"
		if p.Err != "" {
			outcome = elide(firstLine(p.Err), 76)
		}
		t.AddRow(report.F(p.Rate, 1), p.Scheme.String(),
			report.F(p.MRTMs, 3), report.F(p.SpaceUtil, 4),
			fmt.Sprintf("%d", p.ProgramFaults), fmt.Sprintf("%d", p.EraseFaults),
			fmt.Sprintf("%d", p.ReadFaults), fmt.Sprintf("%d", p.RetiredBlocks),
			report.F(p.RecoveryMs, 1), outcome)
	}
	return t
}

// firstLine trims an error message to its first line for table cells.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// elide keeps a long wrap chain readable in a table cell: the head names the
// failing request, the tail names the root cause, the middle is the least
// interesting part.
func elide(s string, max int) string {
	if len(s) <= max {
		return s
	}
	head := max * 2 / 3
	tail := max - head - 5
	return s[:head] + " ... " + s[len(s)-tail:]
}
