package experiments

import (
	"context"
	"fmt"

	"emmcio/internal/analysis"
	"emmcio/internal/biotracer"
	"emmcio/internal/core"
	"emmcio/internal/emmc"
	"emmcio/internal/paper"
	"emmcio/internal/report"
	"emmcio/internal/runner"
	"emmcio/internal/trace"
)

// TableI renders the application roster (Table I of the paper).
func TableI() *report.Table {
	defs := map[string]string{
		paper.Idle:        "Smartphone in idle state",
		paper.CallIn:      "Answering an incoming call",
		paper.CallOut:     "Making a phone call",
		paper.Booting:     "Smartphone booting process",
		paper.Movie:       "Watching a movie on the smartphone",
		paper.Music:       "Listening songs on the smartphone",
		paper.AngryBirds:  "Playing the AngryBirds game",
		paper.CameraVideo: "Recording a video clip",
		paper.GoogleMaps:  "Road map and navigation",
		paper.Messaging:   "Receiving/sending/viewing messages",
		paper.Twitter:     "Reading and posting tweets",
		paper.Email:       "Receiving/sending/viewing emails",
		paper.Facebook:    "Viewing pictures/adding comments/etc.",
		paper.Amazon:      "Mobile online shopping",
		paper.YouTube:     "Watching videos on the YouTube",
		paper.Radio:       "Listening to online radio",
		paper.Installing:  "Installing applications from Google Play",
		paper.WebBrowsing: "Reading news on the TIME website",
	}
	t := report.NewTable("Table I: Selected applications", "Application", "Definition")
	for _, name := range paper.IndividualApps {
		t.AddRow(name, defs[name])
	}
	return t
}

// TableII renders the trace-collecting protocol (Table II of the paper),
// which doubles as documentation of each generator's duration target.
func TableII() *report.Table {
	t := report.NewTable("Table II: Trace collecting details", "Trace(s)", "Protocol")
	rows := [][2]string{
		{"Idle", "10pm-6am: idle status (8.2 h)"},
		{"Booting", "30-40 seconds: launching the smartphone"},
		{"CallIn, CallOut", "~1 hour: mimicking a phone interview"},
		{"CameraVideo, AngryBirds, GoogleMaps", "0.5-1 hour: recording video, playing, navigating"},
		{"Facebook, Twitter, Amazon, Email, Messaging", "10-20 minutes: viewing, searching, composing"},
		{"WebBrowsing, YouTube, Radio, Music", "1-1.5 hours: news, videos, radio, music"},
		{"Movie, Installing", "10-17 minutes: local movie, installing via WiFi"},
		{"Combos except FB/Msg", "10-36 minutes: Facebook/Messaging/Browsing over Radio or Music"},
		{"FB/Msg", "12 minutes: Facebook, switching to Messaging per incoming message"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return t
}

// UtilizationRow reports how busy the device was during one trace — the
// quantitative basis of Implications 1 and 2.
type UtilizationRow struct {
	Name          string
	DevicePct     float64
	MaxChannelPct float64
	NoWaitPct     float64
}

// DeviceUtilization replays traces on the measured device and reports busy
// fractions.
func DeviceUtilization(env *Env, names ...string) ([]UtilizationRow, error) {
	if len(names) == 0 {
		names = paper.IndividualApps
	}
	jobs := make([]ReplayJob, len(names))
	for i, name := range names {
		jobs[i] = ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: MeasuredDeviceOptions()}
	}
	results, err := env.Replays("utilization", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]UtilizationRow, len(names))
	for i, name := range names {
		// Channel busy fractions are an eMMC-model detail (the measured
		// device); other backends would report through their own telemetry.
		dev, ok := results[i].Device.(*emmc.Device)
		if !ok {
			continue
		}
		u := dev.Utilization()
		row := UtilizationRow{Name: name, DevicePct: u.Device * 100, NoWaitPct: results[i].Metrics.NoWaitRatio * 100}
		for _, c := range u.Channels {
			if c*100 > row.MaxChannelPct {
				row.MaxChannelPct = c * 100
			}
		}
		out[i] = row
	}
	return out, nil
}

// RenderUtilization renders the busy fractions.
func RenderUtilization(rows []UtilizationRow) *report.Table {
	t := report.NewTable("Device utilization during each trace (measured device)",
		"Trace", "Device busy %", "Busiest channel %", "NoWait %")
	for _, r := range rows {
		t.AddRow(r.Name, report.F(r.DevicePct, 2), report.F(r.MaxChannelPct, 2), report.F(r.NoWaitPct, 0))
	}
	return t
}

// TableIIIResult pairs measured and published size statistics per trace.
type TableIIIResult struct {
	Measured  []analysis.SizeStats
	Published []paper.SizeRow
	Names     []string
}

// TableIII measures the size-related statistics of all 25 generated traces
// (Table III of the paper). No replay is involved, but generating 25 traces
// is the cost, so the per-trace analyses run on the env's worker pool.
func TableIII(env *Env) TableIIIResult {
	names := paper.AllTraces
	// Env streams never fail (generation is in-process), so the aggregated
	// error is nil unless the env's context cancels the sweep mid-way — the
	// caller-facing signal for that is the context itself.
	measured, _ := runner.MapContext(env.context(), env.Runner(), "tableIII", names,
		func(ctx context.Context, _ int, name string) (analysis.SizeStats, error) {
			return analysis.SizeStatsOfStream(trace.WithContext(ctx, env.Stream(name)))
		})
	res := TableIIIResult{Names: names, Measured: measured}
	for _, name := range names {
		res.Published = append(res.Published, paper.TableIII[name])
	}
	return res
}

// Render returns the side-by-side comparison table.
func (r TableIIIResult) Render() *report.Table {
	t := report.NewTable(
		"Table III: Size-related statistics (measured | paper)",
		"Application", "DataKB", "Reqs", "MaxKB", "AveKB", "AveR", "AveW", "Wr%", "WrSz%",
	)
	for i, name := range r.Names {
		m, p := r.Measured[i], r.Published[i]
		t.AddRow(name,
			fmt.Sprintf("%d|%d", m.DataKB, p.DataKB),
			fmt.Sprintf("%d|%d", m.Requests, paper.EffectiveRequests(name)),
			fmt.Sprintf("%d|%d", m.MaxKB, p.MaxKB),
			fmt.Sprintf("%.1f|%.1f", m.AveKB, p.AveKB),
			fmt.Sprintf("%.1f|%.1f", m.AveReadKB, p.AveReadKB),
			fmt.Sprintf("%.1f|%.1f", m.AveWriteKB, p.AveWriteKB),
			fmt.Sprintf("%.1f|%.1f", m.WriteReqPct, p.WriteReqPct),
			fmt.Sprintf("%.1f|%.1f", m.WriteSizePct, p.WriteSizePct),
		)
	}
	return t
}

// TableIVResult pairs measured and published timing statistics per trace.
type TableIVResult struct {
	Measured  []analysis.TimingStats
	Published []paper.TimingRow
	Names     []string
	Overheads []biotracer.Overhead
}

// TableIV replays every generated trace through BIOtracer on the
// measured-device model and computes the timing statistics of Table IV.
func TableIV(env *Env) (TableIVResult, error) {
	names := paper.AllTraces
	jobs := make([]ReplayJob, len(names))
	for i, name := range names {
		jobs[i] = ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: MeasuredDeviceOptions(),
			Collect: true, WantStats: true}
	}
	results, err := env.Replays("tableIV", jobs)
	if err != nil {
		return TableIVResult{}, err
	}
	res := TableIVResult{Names: names}
	for i, name := range names {
		res.Measured = append(res.Measured, results[i].Stats.Timing())
		res.Published = append(res.Published, paper.TableIV[name])
		res.Overheads = append(res.Overheads, results[i].Overhead)
	}
	return res, nil
}

// Render returns the side-by-side comparison table.
func (r TableIVResult) Render() *report.Table {
	t := report.NewTable(
		"Table IV: Timing-related statistics (measured | paper)",
		"Application", "Dur(s)", "Arr(/s)", "Acc(KB/s)", "NoWait%", "Serv(ms)", "Resp(ms)", "Spat%", "Temp%",
	)
	for i, name := range r.Names {
		m, p := r.Measured[i], r.Published[i]
		t.AddRow(name,
			fmt.Sprintf("%.0f|%.0f", m.DurationSec, p.DurationSec),
			fmt.Sprintf("%.2f|%.2f", m.ArrivalRate, p.ArrivalRate),
			fmt.Sprintf("%.1f|%.1f", m.AccessRate, p.AccessRate),
			fmt.Sprintf("%.0f|%.0f", m.NoWaitPct, p.NoWaitPct),
			fmt.Sprintf("%.2f|%.2f", m.MeanServMs, p.MeanServMs),
			fmt.Sprintf("%.2f|%.2f", m.MeanRespMs, p.MeanRespMs),
			fmt.Sprintf("%.1f|%.1f", m.SpatialPct, p.SpatialPct),
			fmt.Sprintf("%.1f|%.1f", m.TemporalPct, p.TemporalPct),
		)
	}
	return t
}

// TableV renders the three simulated device configurations.
func TableV() *report.Table {
	t := report.NewTable("Table V: Configurations of the three eMMC devices",
		"Parameter", "4PS", "8PS", "HPS")
	rows := [][4]string{
		{"Page read latency (us)", "160", "244", "160/244"},
		{"Page write latency (us)", "1385", "1491", "1385/1491"},
		{"Block erase latency (us)", "3800", "3800", "3800"},
		{"Channel x chip x die x plane", "2x1x2x2", "2x1x2x2", "2x1x2x2"},
		{"Blocks per plane", "1024", "512", "512x4KB + 256x8KB"},
		{"Pages per block", "1024", "1024", "1024"},
		{"Total capacity", "32 GB", "32 GB", "32 GB"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3])
	}
	// Cross-check against the live configurations.
	for i, s := range core.Schemes {
		_ = i
		cfg := core.DeviceConfig(s, core.Options{})
		var total int64
		for _, p := range cfg.Pools {
			total += p.BytesPerPlane() * int64(cfg.Geometry.Planes())
		}
		if total != 32<<30 {
			panic("experiments: Table V capacity drifted from 32 GB for " + s.String())
		}
	}
	return t
}

// OverheadResult is the §II-C tracer overhead analysis.
type OverheadResult struct {
	Names     []string
	Overheads []biotracer.Overhead
}

// TracerOverhead measures BIOtracer's §II-C overhead on a few long traces.
func TracerOverhead(env *Env, names ...string) (OverheadResult, error) {
	if len(names) == 0 {
		names = []string{paper.Twitter, paper.GoogleMaps, paper.Installing}
	}
	jobs := make([]ReplayJob, len(names))
	for i, name := range names {
		jobs[i] = ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: MeasuredDeviceOptions(), Collect: true}
	}
	results, err := env.Replays("tracer-overhead", jobs)
	if err != nil {
		return OverheadResult{}, err
	}
	res := OverheadResult{Names: names}
	for i := range results {
		res.Overheads = append(res.Overheads, results[i].Overhead)
	}
	return res, nil
}

// Render returns the overhead table.
func (r OverheadResult) Render() *report.Table {
	t := report.NewTable("BIOtracer overhead (sec. II-C; paper reports ~2%)",
		"Trace", "Monitored", "Flushes", "Extra I/Os", "Overhead%")
	for i, name := range r.Names {
		o := r.Overheads[i]
		t.AddRow(name, report.I(o.MonitoredRequests), report.I(o.Flushes),
			report.I(o.ExtraRequests), report.Pct(o.RequestOverhead, 2))
	}
	return t
}

// Characteristics replays the 18 individual traces on the measured device
// and evaluates the paper's six characteristics on the results. Each replay
// streams through an online accumulator — no trace is materialized.
func Characteristics(env *Env) ([]analysis.Finding, error) {
	names := paper.IndividualApps
	jobs := make([]ReplayJob, len(names))
	for i, name := range names {
		jobs[i] = ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: MeasuredDeviceOptions(),
			Collect: true, WantStats: true}
	}
	results, err := env.Replays("characteristics", jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]analysis.TraceSummary, len(results))
	for i := range results {
		rows[i] = results[i].Stats.Summary()
	}
	return analysis.EvaluateCharacteristicsFrom(rows), nil
}

// RenderFindings renders characteristic findings as a table.
func RenderFindings(findings []analysis.Finding) *report.Table {
	t := report.NewTable("The six characteristics (sec. III)", "#", "Claim", "Holds", "Evidence")
	for _, f := range findings {
		holds := "yes"
		if !f.Holds {
			holds = "NO"
		}
		t.AddRow(report.I(f.ID), f.Claim, holds, f.Evidence)
	}
	return t
}
