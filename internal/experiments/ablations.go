package experiments

import (
	"emmcio/internal/core"
	"emmcio/internal/emmc"
	"emmcio/internal/flash"
	"emmcio/internal/ftl"
	"emmcio/internal/paper"
	"emmcio/internal/report"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// Ablation experiments back the paper's five Implications with measurements
// on the same substrates the case study uses.

// ParallelismRow compares the simple (channel-held) controller against an
// SSD-style interleaving controller on one trace — Implication 1: because
// few requests arrive simultaneously and requests are small, adding
// device-level parallelism helps far less than serving requests faster.
type ParallelismRow struct {
	Name            string
	SimpleMRTMs     float64
	InterleaveMRTMs float64
	SJFMRTMs        float64 // host-side shortest-job-first reordering
	NoWaitPct       float64
}

// Implication1Parallelism measures the benefit of an interleaving
// controller per trace.
func Implication1Parallelism(env *Env, names ...string) ([]ParallelismRow, error) {
	if len(names) == 0 {
		names = []string{paper.Messaging, paper.Twitter, paper.Movie, paper.Booting}
	}
	inter := core.DefaultTiming()
	inter.ChannelInterleave = true
	var jobs []ReplayJob
	for _, name := range names {
		jobs = append(jobs,
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: core.CaseStudyOptions()},
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: core.Options{Timing: &inter}},
			// Host-side reordering (the "parallel request queues at OS
			// layer" of Implication 1): strongest simple policy, SJF.
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: core.CaseStudyOptions(), Policy: core.SchedSJF},
		)
	}
	results, err := env.Replays("implication1-parallelism", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]ParallelismRow, len(names))
	for i, name := range names {
		simple, interleave, sjf := results[3*i].Metrics, results[3*i+1].Metrics, results[3*i+2].Metrics
		out[i] = ParallelismRow{
			Name:            name,
			SimpleMRTMs:     simple.MeanResponseNs / 1e6,
			InterleaveMRTMs: interleave.MeanResponseNs / 1e6,
			SJFMRTMs:        sjf.MeanResponseNs / 1e6,
			NoWaitPct:       simple.NoWaitRatio * 100,
		}
	}
	return out, nil
}

// GCPolicyRow compares foreground and idle GC — Implication 2: the long
// inter-arrival gaps of smartphone workloads are long enough to hide
// garbage collection entirely.
type GCPolicyRow struct {
	Name              string
	ForegroundMRTMs   float64
	IdleMRTMs         float64
	ForegroundStallMs float64
	IdleStallMs       float64
	IdleAbsorbedMs    float64
}

// GC-pressure device: 128 blocks of 64 pages per plane (256 KB erase
// units, 256 MB total). Two sessions of a real trace overflow its free
// pool, and one garbage collection moves at most 64 pages (~100 ms) — the
// "completes within an inter-arrival gap" regime Implication 2 assumes.
const (
	gcPressureScaleBlocks = 8
	gcPressureScalePages  = 16
)

func gcPressureOptions(policy emmc.GCPolicy) core.Options {
	return core.Options{
		GCPolicy:    policy,
		ScaleBlocks: gcPressureScaleBlocks,
		ScalePages:  gcPressureScalePages,
	}
}

// doubledSession streams the trace followed by an identical second session
// (arrivals shifted past the first), so every page written in session one
// is overwritten — the stale data garbage collection exists to reclaim.
// Nothing is materialized: the second session replays the same stream with
// a one-second gap after the first session's last arrival.
func doubledSession(st trace.Stream) trace.Stream {
	return trace.Repeat(st, 2, 1_000_000_000)
}

// Implication2IdleGC replays two sessions of each trace on a shrunken
// device so garbage collection actually fires, under both GC policies.
func Implication2IdleGC(env *Env, names ...string) ([]GCPolicyRow, error) {
	if len(names) == 0 {
		names = []string{paper.Twitter, paper.GoogleMaps}
	}
	var jobs []ReplayJob
	for _, name := range names {
		for _, policy := range []emmc.GCPolicy{emmc.GCForeground, emmc.GCIdle} {
			jobs = append(jobs, ReplayJob{
				Trace: name, Scheme: core.Scheme4PS,
				Options: gcPressureOptions(policy), PrepareStream: doubledSession,
			})
		}
	}
	results, err := env.Replays("implication2-idlegc", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]GCPolicyRow, len(names))
	for i, name := range names {
		fg, idle := results[2*i].Metrics, results[2*i+1].Metrics
		out[i] = GCPolicyRow{
			Name:              name,
			ForegroundMRTMs:   fg.MeanResponseNs / 1e6,
			ForegroundStallMs: float64(fg.GCStallNs) / 1e6,
			IdleMRTMs:         idle.MeanResponseNs / 1e6,
			IdleStallMs:       float64(idle.GCStallNs) / 1e6,
			IdleAbsorbedMs:    float64(idle.IdleGCNs) / 1e6,
		}
	}
	return out, nil
}

// BufferRow measures the device RAM buffer's read hit rate — Implication 3:
// weak localities mean a large internal buffer earns little.
type BufferRow struct {
	Name        string
	BufferMB    int
	HitRatePct  float64
	TemporalPct float64
}

// Implication3Buffer replays traces with an LRU buffer of the given sizes.
func Implication3Buffer(env *Env, sizesMB []int, names ...string) ([]BufferRow, error) {
	if len(names) == 0 {
		names = []string{paper.Twitter, paper.Facebook, paper.Movie}
	}
	if len(sizesMB) == 0 {
		sizesMB = []int{4, 64}
	}
	var jobs []ReplayJob
	var rows []BufferRow
	for _, name := range names {
		for _, mb := range sizesMB {
			opt := MeasuredDeviceOptions()
			opt.RAMBufferBytes = int64(mb) << 20
			jobs = append(jobs, ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: opt, WantStats: true})
			rows = append(rows, BufferRow{Name: name, BufferMB: mb})
		}
	}
	results, err := env.Replays("implication3-buffer", jobs)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].HitRatePct = results[i].Metrics.BufferHitRate * 100
		rows[i].TemporalPct = results[i].Stats.TemporalLocality() * 100
	}
	return rows, nil
}

// WearRow reports the erase spread and leveling cost of one wear policy —
// Implication 4: smartphone workloads' low localities spread wear naturally,
// so the simple strategy suffices and static leveling buys little for its
// extra copies.
type WearRow struct {
	Name        string
	Policy      ftl.WearPolicy
	TotalErases int
	MinErases   int
	MaxErases   int
	LevelMoves  int64
}

// Implication4Wear replays two sessions of a trace on a shrunken device
// under all three wear policies and reports the erase distributions.
func Implication4Wear(env *Env, names ...string) ([]WearRow, error) {
	if len(names) == 0 {
		names = []string{paper.Twitter, paper.GoogleMaps}
	}
	var jobs []ReplayJob
	var rows []WearRow
	for _, name := range names {
		for _, policy := range []ftl.WearPolicy{ftl.WearNone, ftl.WearRoundRobin, ftl.WearStatic} {
			opt := gcPressureOptions(emmc.GCForeground)
			opt.Wear = policy
			jobs = append(jobs, ReplayJob{
				Trace: name, Scheme: core.Scheme4PS, Options: opt,
				PrepareStream: doubledSession, Collect: true,
			})
			rows = append(rows, WearRow{Name: name, Policy: policy})
		}
	}
	results, err := env.Replays("implication4-wear", jobs)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		dev := results[i].Device
		w := dev.Wear(0)
		rows[i].TotalErases = w.TotalErases
		rows[i].MinErases = w.MinErases
		rows[i].MaxErases = w.MaxErases
		rows[i].LevelMoves = dev.FTLStats().StaticLevelMoves
	}
	return rows, nil
}

// SLCRow compares the MLC 4PS device against an SLC-mode variant —
// Implication 5: serving the dominant 4 KB requests from fast (SLC-mode)
// pages boosts overall performance at a capacity cost.
type SLCRow struct {
	Name     string
	MLCMRTMs float64
	SLCMRTMs float64
}

// SLCModeTiming returns Table V timing with SLC-mode fast pages: roughly
// half the MLC latencies, the speedup the ComboFTL literature the paper
// cites reports for fast-page-only operation (at a 50% capacity cost).
func SLCModeTiming() flash.Timing {
	tm := core.DefaultTiming()
	fast := make(map[int]flash.OpTiming, len(tm.PerPage))
	for sz, ot := range tm.PerPage {
		fast[sz] = flash.OpTiming{ReadNs: ot.ReadNs / 2, ProgramNs: ot.ProgramNs / 2}
	}
	tm.PerPage = fast
	return tm
}

// Implication5SLC replays traces on MLC timing vs SLC-mode timing.
func Implication5SLC(env *Env, names ...string) ([]SLCRow, error) {
	if len(names) == 0 {
		names = []string{paper.Messaging, paper.Twitter, paper.Email}
	}
	slc := SLCModeTiming()
	var jobs []ReplayJob
	for _, name := range names {
		jobs = append(jobs,
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: core.CaseStudyOptions()},
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: core.Options{Timing: &slc}},
		)
	}
	results, err := env.Replays("implication5-slc", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]SLCRow, len(names))
	for i, name := range names {
		out[i] = SLCRow{
			Name:     name,
			MLCMRTMs: results[2*i].Metrics.MeanResponseNs / 1e6,
			SLCMRTMs: results[2*i+1].Metrics.MeanResponseNs / 1e6,
		}
	}
	return out, nil
}

// SLCCacheRow compares HPS against an "HPS+SLC" organization that runs the
// 4 KB pool in SLC mode: small (4 KB-dominant) requests land on fast pages,
// large requests on 8 KB MLC pages — combining Implications 1 and 5 at a
// capacity cost.
type SLCCacheRow struct {
	Name        string
	HPSMRTMs    float64
	HPSSLCMRTMs float64
	// CapacityGB of each organization (the SLC pool halves its share).
	HPSCapacityGB    float64
	HPSSLCCapacityGB float64
}

// SLCCacheConfig builds the HPS variant whose 4 KB pool runs in SLC mode:
// the same 512 four-KB blocks per plane, but only the fast page of each
// MLC pair is programmable, so the pool keeps 512 of 1024 pages per block.
func SLCCacheConfig() emmc.Config {
	cfg := core.DeviceConfig(core.SchemeHPS, core.CaseStudyOptions())
	cfg.Pools[1].SLCMode = true
	cfg.Pools[1].PagesPerBlock /= 2
	return cfg
}

// Implication5SLCCache replays traces on HPS vs the SLC-cache hybrid.
func Implication5SLCCache(env *Env, names ...string) ([]SLCCacheRow, error) {
	if len(names) == 0 {
		names = []string{paper.Messaging, paper.Twitter, paper.GoogleMaps}
	}
	capacity := func(cfg emmc.Config) float64 {
		var total int64
		for _, p := range cfg.Pools {
			total += p.BytesPerPlane() * int64(cfg.Geometry.Planes())
		}
		return float64(total) / (1 << 30)
	}
	hpsCfg := core.DeviceConfig(core.SchemeHPS, core.CaseStudyOptions())
	slcCfg := SLCCacheConfig()
	var jobs []ReplayJob
	for _, name := range names {
		jobs = append(jobs,
			ReplayJob{Trace: name, Scheme: core.SchemeHPS, Options: core.CaseStudyOptions()},
			// Each job builds its own device from a fresh config.
			ReplayJob{Trace: name, Scheme: core.SchemeHPS, Device: func() (storage.Device, error) {
				return emmc.New(SLCCacheConfig())
			}},
		)
	}
	results, err := env.Replays("implication5-slccache", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]SLCCacheRow, len(names))
	for i, name := range names {
		out[i] = SLCCacheRow{
			Name:             name,
			HPSCapacityGB:    capacity(hpsCfg),
			HPSSLCCapacityGB: capacity(slcCfg),
			HPSMRTMs:         results[2*i].Metrics.MeanResponseNs / 1e6,
			HPSSLCMRTMs:      results[2*i+1].Metrics.MeanResponseNs / 1e6,
		}
	}
	return out, nil
}

// MapCacheRow measures DFTL-style mapping-cache behaviour — the realistic
// face of Implication 3: an eMMC's small controller RAM caches only part of
// the mapping table, and the workloads' weak locality bounds the hit rate.
type MapCacheRow struct {
	Name          string
	CacheKB       int
	HitRatePct    float64
	MRTMs         float64
	MapReadsPer1k float64 // translation-page reads per 1000 host requests
}

// Implication3MapCache sweeps mapping-cache sizes on the 4PS device.
func Implication3MapCache(env *Env, sizesKB []int, names ...string) ([]MapCacheRow, error) {
	if len(names) == 0 {
		names = []string{paper.Twitter, paper.GoogleMaps}
	}
	if len(sizesKB) == 0 {
		sizesKB = []int{16, 64, 256}
	}
	var jobs []ReplayJob
	var rows []MapCacheRow
	for _, name := range names {
		for _, kb := range sizesKB {
			opt := core.CaseStudyOptions()
			opt.MapCacheBytes = int64(kb) << 10
			jobs = append(jobs, ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: opt})
			rows = append(rows, MapCacheRow{Name: name, CacheKB: kb})
		}
	}
	results, err := env.Replays("implication3-mapcache", jobs)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		dev := results[i].Device
		rows[i].HitRatePct = dev.MapCacheStats().HitRate() * 100
		rows[i].MRTMs = results[i].Metrics.MeanResponseNs / 1e6
		rows[i].MapReadsPer1k = float64(dev.Metrics().MapReads) / float64(results[i].Metrics.Served) * 1000
	}
	return rows, nil
}

// RenderMapCache renders the sweep.
func RenderMapCache(rows []MapCacheRow) *report.Table {
	t := report.NewTable("Implication 3 (realistic): DFTL mapping-cache size sweep (4PS)",
		"Trace", "Cache KB", "Hit rate %", "MRT (ms)", "T-reads /1k reqs")
	for _, r := range rows {
		t.AddRow(r.Name, report.I(r.CacheKB), report.F(r.HitRatePct, 1),
			report.F(r.MRTMs, 2), report.F(r.MapReadsPer1k, 1))
	}
	return t
}

// RenderAblations renders all implication studies into one table set.
func RenderAblations(p1 []ParallelismRow, p2 []GCPolicyRow, p3 []BufferRow, p4 []WearRow, p5 []SLCRow) []*report.Table {
	t1 := report.NewTable("Implication 1: parallelism and host scheduling (4PS MRT, ms)",
		"Trace", "Simple ctrl", "Interleaving ctrl", "Host SJF queue", "NoWait%")
	for _, r := range p1 {
		t1.AddRow(r.Name, report.F(r.SimpleMRTMs, 2), report.F(r.InterleaveMRTMs, 2),
			report.F(r.SJFMRTMs, 2), report.F(r.NoWaitPct, 0))
	}
	t2 := report.NewTable("Implication 2: GC policy (shrunken device)",
		"Trace", "FG MRT(ms)", "Idle MRT(ms)", "FG stall(ms)", "Idle stall(ms)", "Absorbed(ms)")
	for _, r := range p2 {
		t2.AddRow(r.Name, report.F(r.ForegroundMRTMs, 2), report.F(r.IdleMRTMs, 2),
			report.F(r.ForegroundStallMs, 1), report.F(r.IdleStallMs, 1), report.F(r.IdleAbsorbedMs, 1))
	}
	t3 := report.NewTable("Implication 3: RAM buffer hit rates",
		"Trace", "Buffer MB", "Hit rate %", "Temporal locality %")
	for _, r := range p3 {
		t3.AddRow(r.Name, report.I(r.BufferMB), report.F(r.HitRatePct, 1), report.F(r.TemporalPct, 1))
	}
	t4 := report.NewTable("Implication 4: wear spread by leveling policy",
		"Trace", "Policy", "Total erases", "Min/block", "Max/block", "Level moves")
	for _, r := range p4 {
		t4.AddRow(r.Name, r.Policy.String(), report.I(r.TotalErases),
			report.I(r.MinErases), report.I(r.MaxErases), report.I(r.LevelMoves))
	}
	t5 := report.NewTable("Implication 5: SLC-mode fast pages (4PS MRT, ms)",
		"Trace", "MLC", "SLC-mode")
	for _, r := range p5 {
		t5.AddRow(r.Name, report.F(r.MLCMRTMs, 2), report.F(r.SLCMRTMs, 2))
	}
	return []*report.Table{t1, t2, t3, t4, t5}
}

// RatePoint is one point of the arrival-rate sensitivity sweep: the trace's
// arrivals compressed by Factor (0.5 = twice the original request rate).
type RatePoint struct {
	Factor   float64
	Rate     float64 // resulting requests per second
	MRT4PSMs float64
	MRTHPSMs float64
}

// Reduction returns HPS's MRT reduction at this point.
func (p RatePoint) Reduction() float64 {
	if p.MRT4PSMs == 0 {
		return 0
	}
	return 1 - p.MRTHPSMs/p.MRT4PSMs
}

// RateSweep studies where the page-size advantage starts to matter: as the
// arrival rate rises (Factor shrinks), 4PS saturates first and HPS's
// queueing headroom turns the modest per-request gain into a large MRT gap —
// the crossover structure behind Fig. 8's spread.
func RateSweep(env *Env, name string, factors []float64) ([]RatePoint, error) {
	if len(factors) == 0 {
		factors = []float64{1.0, 0.5, 0.25, 0.125}
	}
	base := env.Trace(name)
	out := make([]RatePoint, len(factors))
	var jobs []ReplayJob
	for i, f := range factors {
		out[i] = RatePoint{Factor: f}
		// The rate comes from the scaled arrivals before any replay.
		scaled := base.Scale(f)
		if d := scaled.Duration(); d > 0 {
			out[i].Rate = float64(len(scaled.Reqs)) / (float64(d) / 1e9)
		}
		prep := func(st trace.Stream) trace.Stream { return trace.ScaleStream(st, f) }
		jobs = append(jobs,
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: core.CaseStudyOptions(), PrepareStream: prep},
			ReplayJob{Trace: name, Scheme: core.SchemeHPS, Options: core.CaseStudyOptions(), PrepareStream: prep},
		)
	}
	results, err := env.Replays("ratesweep", jobs)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i].MRT4PSMs = results[2*i].Metrics.MeanResponseNs / 1e6
		out[i].MRTHPSMs = results[2*i+1].Metrics.MeanResponseNs / 1e6
	}
	return out, nil
}

// RenderRateSweep renders the sweep.
func RenderRateSweep(name string, pts []RatePoint) *report.Table {
	t := report.NewTable("Rate sensitivity: "+name+" arrivals compressed",
		"Factor", "Rate (/s)", "4PS MRT(ms)", "HPS MRT(ms)", "Reduction")
	for _, p := range pts {
		t.AddRow(report.F(p.Factor, 3), report.F(p.Rate, 1),
			report.F(p.MRT4PSMs, 2), report.F(p.MRTHPSMs, 2),
			"-"+report.Pct(p.Reduction(), 1)+"%")
	}
	return t
}
