package experiments

import (
	"emmcio/internal/core"
	"emmcio/internal/paper"
	"emmcio/internal/report"
)

// CaseStudyRow is one trace's Fig. 8 + Fig. 9 outcome.
type CaseStudyRow struct {
	Name string
	// MRTMs indexes by scheme order: 4PS, 8PS, HPS.
	MRTMs [3]float64
	// Util indexes likewise (space utilization, Fig. 9).
	Util [3]float64
}

// MRTReductionVs4PS returns HPS's mean-response-time reduction (Fig. 8).
func (r CaseStudyRow) MRTReductionVs4PS() float64 {
	if r.MRTMs[0] == 0 {
		return 0
	}
	return 1 - r.MRTMs[2]/r.MRTMs[0]
}

// UtilGainVs8PS returns HPS's space-utilization gain over 8PS (Fig. 9).
func (r CaseStudyRow) UtilGainVs8PS() float64 {
	if r.Util[1] == 0 {
		return 0
	}
	return r.Util[2]/r.Util[1] - 1
}

// CaseStudyResult aggregates the §V experiments over the 18 traces.
type CaseStudyResult struct {
	Rows []CaseStudyRow
}

// CaseStudy replays the 18 individual traces on all three Table V schemes
// (Figs. 8 and 9). Traces are replayed on fresh ("brand new") devices with
// the RAM buffer disabled, as §V-B specifies. The 54 replays run on the
// env's worker pool; results are identical at any pool width.
func CaseStudy(env *Env) (CaseStudyResult, error) {
	return caseStudyOn(env, paper.IndividualApps)
}

func caseStudyOn(env *Env, names []string) (CaseStudyResult, error) {
	opt := core.CaseStudyOptions()
	jobs := make([]ReplayJob, 0, len(names)*len(core.Schemes))
	for _, name := range names {
		for _, s := range core.Schemes {
			jobs = append(jobs, ReplayJob{Trace: name, Scheme: s, Options: opt})
		}
	}
	results, err := env.Replays("casestudy", jobs)
	if err != nil {
		return CaseStudyResult{}, err
	}
	res := CaseStudyResult{Rows: make([]CaseStudyRow, len(names))}
	for i, name := range names {
		res.Rows[i].Name = name
		for si := range core.Schemes {
			m := results[i*len(core.Schemes)+si].Metrics
			res.Rows[i].MRTMs[si] = m.MeanResponseNs / 1e6
			res.Rows[i].Util[si] = m.SpaceUtilization
		}
	}
	return res, nil
}

// AverageReduction returns the mean Fig. 8 reduction across rows.
func (r CaseStudyResult) AverageReduction() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	var sum float64
	for _, row := range r.Rows {
		sum += row.MRTReductionVs4PS()
	}
	return sum / float64(len(r.Rows))
}

// AverageUtilGain returns the mean Fig. 9 gain across rows.
func (r CaseStudyResult) AverageUtilGain() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	var sum float64
	for _, row := range r.Rows {
		sum += row.UtilGainVs8PS()
	}
	return sum / float64(len(r.Rows))
}

// Best returns the row with the largest Fig. 8 reduction.
func (r CaseStudyResult) Best() CaseStudyRow {
	best := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.MRTReductionVs4PS() > best.MRTReductionVs4PS() {
			best = row
		}
	}
	return best
}

// Worst returns the row with the smallest Fig. 8 reduction.
func (r CaseStudyResult) Worst() CaseStudyRow {
	worst := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.MRTReductionVs4PS() < worst.MRTReductionVs4PS() {
			worst = row
		}
	}
	return worst
}

// RenderFig8 renders the mean-response-time comparison.
func (r CaseStudyResult) RenderFig8() *report.Table {
	t := report.NewTable("Fig. 8: Mean response time by scheme",
		"Application", "4PS (ms)", "8PS (ms)", "HPS (ms)", "HPS vs 4PS")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			report.F(row.MRTMs[0], 2), report.F(row.MRTMs[1], 2), report.F(row.MRTMs[2], 2),
			"-"+report.Pct(row.MRTReductionVs4PS(), 1)+"%")
	}
	return t
}

// RenderFig9 renders the space-utilization comparison (normalized to 4PS,
// which is always 1.0; HPS matches it by construction).
func (r CaseStudyResult) RenderFig9() *report.Table {
	t := report.NewTable("Fig. 9: Space utilization (normalized to 4PS)",
		"Application", "8PS", "HPS", "HPS vs 8PS")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			report.F(row.Util[1]/row.Util[0], 3), report.F(row.Util[2]/row.Util[0], 3),
			"+"+report.Pct(row.UtilGainVs8PS(), 1)+"%")
	}
	return t
}

// Fig8Figure renders the mean-response-time comparison as grouped bars on a
// log scale (the paper splits Fig. 8 into linear and log panels; one log
// panel covers both groups).
func (r CaseStudyResult) Fig8Figure() *report.Figure {
	f := &report.Figure{
		Title:  "Fig. 8: Mean response time by scheme (log scale)",
		YLabel: "MRT (ms)",
		LogY:   true,
	}
	series := []report.Series{{Name: "4PS"}, {Name: "8PS"}, {Name: "HPS"}}
	for _, row := range r.Rows {
		f.XTicks = append(f.XTicks, row.Name)
		for i := range series {
			series[i].Values = append(series[i].Values, row.MRTMs[i])
		}
	}
	f.Series = series
	return f
}

// Fig9Figure renders space utilization normalized to 4PS.
func (r CaseStudyResult) Fig9Figure() *report.Figure {
	f := &report.Figure{
		Title:  "Fig. 9: Space utilization (normalized to 4PS)",
		YLabel: "utilization",
	}
	series := []report.Series{{Name: "8PS"}, {Name: "HPS"}}
	for _, row := range r.Rows {
		f.XTicks = append(f.XTicks, row.Name)
		series[0].Values = append(series[0].Values, row.Util[1]/row.Util[0])
		series[1].Values = append(series[1].Values, row.Util[2]/row.Util[0])
	}
	f.Series = series
	return f
}
