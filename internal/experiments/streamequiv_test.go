package experiments

import (
	"testing"

	"emmcio/internal/core"
	"emmcio/internal/faults"
	"emmcio/internal/paper"
	"emmcio/internal/reliability"
	"emmcio/internal/rng"
	"emmcio/internal/runner"
)

// TestStreamingReplayEquivalence is the refactor's load-bearing property:
// replaying a generated stream must produce results bit-identical to
// replaying the materialized trace — the full Metrics struct on success,
// and the same error plus post-mortem device counters when an aged faulty
// device dies mid-replay — for every trace × scheme, at any worker count,
// with fault injection off and on. Any drift here means the streaming
// pipeline changed the simulation, not just its memory profile.
func TestStreamingReplayEquivalence(t *testing.T) {
	env := DefaultEnv()
	type cell struct {
		name   string
		scheme core.Scheme
		faulty bool
	}
	// outcome captures everything one replay can produce. Comparable with
	// ==, so bit-identity is the struct equality below.
	type outcome struct {
		metrics core.Metrics
		errStr  string
		// Post-mortem counters: on a mid-replay death the returned Metrics
		// is zero, so equivalence is enforced on the device state instead.
		served, pgmFaults, ersFaults, readFaults, retired, recoveryNs int64
	}
	var plan []cell
	for _, faulty := range []bool{false, true} {
		for _, name := range paper.AllTraces {
			for _, s := range core.Schemes {
				plan = append(plan, cell{name: name, scheme: s, faulty: faulty})
			}
		}
	}

	// run replays one cell and never fails the sweep: a device dying at
	// endurance under rate-0.5 faults is a result both paths must agree on.
	run := func(i int, c cell, streamed bool) (outcome, error) {
		opt := core.CaseStudyOptions()
		if c.faulty {
			// Shrink the pools and age the device so wear-dependent fault
			// probabilities are non-trivial; seed per cell so both replay
			// paths draw identical fault decisions.
			opt.ScaleBlocks = gcPressureScaleBlocks
			opt.ScalePages = gcPressureScalePages
			mix := uint64(i%(len(plan)/2)) + 1
			opt.Reliability = reliability.Default()
			opt.Faults = &faults.Config{
				Seed:  rng.SplitMix64(&mix),
				Rate:  0.5,
				Model: opt.Reliability,
			}
		}
		dev, err := core.NewDevice(c.scheme, opt)
		if err != nil {
			return outcome{}, err // config bug: fail loudly
		}
		if c.faulty {
			cfg := core.DeviceConfig(c.scheme, opt)
			for pool, spec := range cfg.Pools {
				blocks := int64(spec.BlocksPerPlane * cfg.Geometry.Planes())
				dev.AddArtificialWear(pool, int64(opt.Reliability.Endurance*float64(blocks)))
			}
		}
		var m core.Metrics
		if streamed {
			m, err = core.ReplayStreamOn(dev, c.scheme, env.Stream(c.name))
		} else {
			m, err = core.ReplayOn(dev, c.scheme, env.Trace(c.name))
		}
		out := outcome{metrics: m}
		if err != nil {
			out.errStr = err.Error()
		}
		fs, dm := dev.FTLStats(), dev.Metrics()
		out.served = dm.Served
		out.pgmFaults = fs.ProgramFaults
		out.ersFaults = fs.EraseFaults
		out.retired = fs.RetiredBlocks
		out.readFaults = dm.ReadFaults
		out.recoveryNs = dm.RecoveryNs
		return out, nil
	}

	// Materialized baseline, sequential: the trace goes through the slice
	// adapter exactly as pre-stream callers did.
	baseline := make([]outcome, len(plan))
	for i, c := range plan {
		o, err := run(i, c, false)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.name, c.scheme, err)
		}
		baseline[i] = o
	}

	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
		got, err := runner.Map(runner.New(workers), "streamequiv", plan,
			func(i int, c cell) (outcome, error) { return run(i, c, true) })
		if err != nil {
			t.Fatalf("streaming replay (-j %d): %v", workers, err)
		}
		for i, c := range plan {
			if got[i] != baseline[i] {
				t.Errorf("-j %d %s/%s faulty=%v: streaming outcome diverges\n  stream: %+v\n  slice:  %+v",
					workers, c.name, c.scheme, c.faulty, got[i], baseline[i])
			}
		}
	}
}
