package experiments

import (
	"emmcio/internal/core"
	"emmcio/internal/paper"
	"emmcio/internal/report"
)

// The paper closes §V-A with "a higher space utilization indicates a longer
// lifetime of an eMMC device": wasted flash and extra GC both consume
// program/erase cycles. LifetimeRow quantifies that, projecting how many
// days of a trace's workload each scheme would sustain before exhausting
// MLC endurance.
type LifetimeRow struct {
	Name   string
	Scheme core.Scheme
	// FlashWrittenPerDayGB is physical flash programmed per day of this
	// workload: host footprint (incl. padding waste) plus GC relocation.
	FlashWrittenPerDayGB float64
	// ProjectedDays until the device averages EnduranceCycles per block.
	ProjectedDays float64
}

// EnduranceCycles is a typical MLC program/erase endurance rating.
const EnduranceCycles = 3000

// Lifetime replays each trace on each scheme (GC-pressured device so write
// amplification is realistic) and projects endurance-limited lifetime.
func Lifetime(env *Env, names ...string) ([]LifetimeRow, error) {
	if len(names) == 0 {
		names = []string{paper.Twitter, paper.Messaging, paper.GoogleMaps}
	}
	var jobs []ReplayJob
	for _, name := range names {
		for _, s := range core.Schemes {
			jobs = append(jobs, ReplayJob{Trace: name, Scheme: s, Options: gcPressureOptions(0), PrepareStream: doubledSession})
		}
	}
	results, err := env.Replays("lifetime", jobs)
	if err != nil {
		return nil, err
	}
	var out []LifetimeRow
	for i, name := range names {
		durationDays := paper.TableIV[name].DurationSec / 86400
		for si, s := range core.Schemes {
			res := results[i*len(core.Schemes)+si]
			// Physical bytes programmed: host footprint (padding included)
			// times write amplification (GC relocation).
			fs := res.Device.FTLStats()
			flashBytes := float64(fs.HostFootprintBytes) * res.Metrics.WriteAmplification
			// The replay covered two sessions.
			perDay := flashBytes / (2 * durationDays)

			// Device capacity at this (scaled) size.
			capBytes := float64(res.Device.CapacityBytes())
			days := capBytes * EnduranceCycles / perDay
			out = append(out, LifetimeRow{
				Name:                 name,
				Scheme:               s,
				FlashWrittenPerDayGB: perDay / (1 << 30),
				ProjectedDays:        days,
			})
		}
	}
	return out, nil
}

// RenderLifetime renders the projection.
func RenderLifetime(rows []LifetimeRow) *report.Table {
	t := report.NewTable("Lifetime projection (MLC endurance 3000 cycles, GC-pressured device)",
		"Trace", "Scheme", "Flash GB/day", "Projected days")
	for _, r := range rows {
		t.AddRow(r.Name, r.Scheme.String(), report.F(r.FlashWrittenPerDayGB, 2), report.F(r.ProjectedDays, 0))
	}
	return t
}
