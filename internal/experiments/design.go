package experiments

import (
	"fmt"

	"emmcio/internal/core"
	"emmcio/internal/emmc"
	"emmcio/internal/flash"
	"emmcio/internal/paper"
	"emmcio/internal/report"
	"emmcio/internal/storage"
	"emmcio/internal/workload"
)

// GCThresholdRow is one point of the free-block-threshold sweep.
type GCThresholdRow struct {
	Threshold int
	MRTMs     float64
	StallMs   float64
	Erases    int
}

// GCThresholdSweep studies the SSD-style GC trigger Implication 2
// critiques: on a GC-pressured replay, an eager (high) threshold collects
// earlier and more often; a lazy (low) one defers work into bigger stalls.
func GCThresholdSweep(env *Env, name string, thresholds []int) ([]GCThresholdRow, error) {
	if name == "" {
		name = paper.Twitter
	}
	if len(thresholds) == 0 {
		thresholds = []int{1, 2, 8, 32}
	}
	jobs := make([]ReplayJob, len(thresholds))
	for i, th := range thresholds {
		opt := gcPressureOptions(emmc.GCForeground)
		opt.GCFreeBlocks = th
		jobs[i] = ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: opt, PrepareStream: doubledSession}
	}
	results, err := env.Replays("gc-threshold", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]GCThresholdRow, len(thresholds))
	for i, th := range thresholds {
		m := results[i].Metrics
		out[i] = GCThresholdRow{
			Threshold: th,
			MRTMs:     m.MeanResponseNs / 1e6,
			StallMs:   float64(m.GCStallNs) / 1e6,
			Erases:    results[i].Device.FTLStats().GC.Erases,
		}
	}
	return out, nil
}

// RenderGCThreshold renders the sweep.
func RenderGCThreshold(name string, rows []GCThresholdRow) *report.Table {
	t := report.NewTable("GC free-block threshold sweep ("+name+", GC-pressured 4PS)",
		"Threshold", "MRT (ms)", "GC stalls (ms)", "Erases")
	for _, r := range rows {
		t.AddRow(report.I(r.Threshold), report.F(r.MRTMs, 3), report.F(r.StallMs, 1), report.I(r.Erases))
	}
	return t
}

// PoolRatioRow is one HPS design point: how the per-plane block budget is
// split between the 4 KB and 8 KB pools (capacity held at 32 GB).
type PoolRatioRow struct {
	Blocks4K int
	Blocks8K int
	MRTMs    float64
	// GCStallMs surfaces pressure when one pool is undersized for its
	// traffic share.
	GCStallMs float64
}

// HPSPoolRatioSweep explores the design space around Table V's 512+256
// split on a GC-pressured replay: too few 4 KB blocks and the dominant
// single-page writes thrash that pool's GC; too few 8 KB blocks and large
// requests lose their fast path.
func HPSPoolRatioSweep(env *Env, name string, splits [][2]int) ([]PoolRatioRow, error) {
	if name == "" {
		name = paper.Twitter
	}
	if len(splits) == 0 {
		// Per-plane (4K blocks, 8K blocks) pairs, all 4 GB/plane. More
		// extreme splits starve one pool outright on the scaled device.
		splits = [][2]int{{576, 224}, {512, 256}, {384, 320}, {128, 448}}
	}
	jobs := make([]ReplayJob, len(splits))
	for i, sp := range splits {
		n4, n8 := sp[0], sp[1]
		if n4*4+n8*8 != 4096 { // MB per plane with 1024-page blocks
			return nil, fmt.Errorf("split %d+%d violates the 4 GB/plane budget", n4, n8)
		}
		jobs[i] = ReplayJob{
			Trace:         name,
			Scheme:        core.SchemeHPS,
			PrepareStream: doubledSession,
			Device: func() (storage.Device, error) {
				cfg := core.DeviceConfig(core.SchemeHPS, gcPressureOptions(emmc.GCForeground))
				// Rebuild pools at the requested split, preserving the
				// GC-pressure scaling (divide both counts like scalePool would).
				cfg.Pools = []flash.PoolSpec{
					{PageBytes: 8192, BlocksPerPlane: max(4, n8/gcPressureScaleBlocks), PagesPerBlock: cfg.Pools[0].PagesPerBlock},
					{PageBytes: 4096, BlocksPerPlane: max(4, n4/gcPressureScaleBlocks), PagesPerBlock: cfg.Pools[1].PagesPerBlock},
				}
				return emmc.New(cfg)
			},
		}
	}
	results, err := env.Replays("hps-pool-ratio", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]PoolRatioRow, len(splits))
	for i, sp := range splits {
		m := results[i].Metrics
		out[i] = PoolRatioRow{
			Blocks4K:  sp[0],
			Blocks8K:  sp[1],
			MRTMs:     m.MeanResponseNs / 1e6,
			GCStallMs: float64(m.GCStallNs) / 1e6,
		}
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RenderPoolRatio renders the design sweep.
func RenderPoolRatio(name string, rows []PoolRatioRow) *report.Table {
	t := report.NewTable("HPS pool-ratio design sweep ("+name+", GC-pressured)",
		"4K blocks/plane", "8K blocks/plane", "MRT (ms)", "GC stalls (ms)")
	for _, r := range rows {
		t.AddRow(report.I(r.Blocks4K), report.I(r.Blocks8K), report.F(r.MRTMs, 3), report.F(r.GCStallMs, 1))
	}
	return t
}

// ProfilesTable dumps every workload profile's calibration parameters —
// the reproduction's equivalent of publishing its trace-generation recipe.
func ProfilesTable() *report.Table {
	t := report.NewTable("Workload profile calibration (targets from Tables III/IV)",
		"Profile", "Reqs", "Dur(s)", "Write%", "R KB", "W KB", "MaxKB", "p4", "burstFrac", "burstMs", "spatial", "temporal")
	for _, p := range workload.All() {
		t.AddRow(p.Name,
			report.I(p.Requests), report.F(p.DurationSec, 0),
			report.F(p.WriteFrac*100, 1), report.F(p.MeanReadKB, 1), report.F(p.MeanWriteKB, 1),
			report.I(int64(p.MaxKB)), report.F(p.P4, 3),
			report.F(p.BurstFrac, 2), report.F(p.BurstMeanMs, 1),
			report.F(p.Spatial, 3), report.F(p.Temporal, 3))
	}
	return t
}

// CQRow compares the FIFO eMMC 4.51 interface against an eMMC 5.1-style
// command queue on one trace.
type CQRow struct {
	Name      string
	FIFOMRTMs float64
	CQMRTMs   float64
	NoWaitPct float64
}

// CommandQueueStudy measures what a command queue would have bought the
// paper's workloads: with most requests already served on an idle device
// (Characteristic 3), very little — except on the saturated traces.
func CommandQueueStudy(env *Env, names ...string) ([]CQRow, error) {
	if len(names) == 0 {
		names = []string{paper.Messaging, paper.Twitter, paper.Movie, paper.Booting}
	}
	cqOpt := core.CaseStudyOptions()
	cqOpt.CommandQueue = true
	jobs := make([]ReplayJob, 0, 2*len(names))
	for _, name := range names {
		jobs = append(jobs,
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: core.CaseStudyOptions()},
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: cqOpt})
	}
	results, err := env.Replays("command-queue", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]CQRow, len(names))
	for i, name := range names {
		fifo, cq := results[2*i].Metrics, results[2*i+1].Metrics
		out[i] = CQRow{
			Name:      name,
			FIFOMRTMs: fifo.MeanResponseNs / 1e6,
			CQMRTMs:   cq.MeanResponseNs / 1e6,
			NoWaitPct: fifo.NoWaitRatio * 100,
		}
	}
	return out, nil
}

// RenderCQ renders the study.
func RenderCQ(rows []CQRow) *report.Table {
	t := report.NewTable("Command queue (eMMC 5.1-style) vs FIFO (4PS MRT, ms)",
		"Trace", "FIFO", "Command queue", "NoWait %")
	for _, r := range rows {
		t.AddRow(r.Name, report.F(r.FIFOMRTMs, 2), report.F(r.CQMRTMs, 2), report.F(r.NoWaitPct, 0))
	}
	return t
}

// GeometryRow is one device-geometry design point.
type GeometryRow struct {
	Channels  int
	PlanesPer int
	MRTMs     float64
}

// GeometrySweep varies channel count (capacity and die/plane structure held
// proportional) to test the paper's premise that a 2-channel controller is
// the right cost point: more channels barely move smartphone MRT.
func GeometrySweep(env *Env, name string, channels []int) ([]GeometryRow, error) {
	if name == "" {
		name = paper.Twitter
	}
	if len(channels) == 0 {
		channels = []int{1, 2, 4}
	}
	planesFor := func(ch int) int {
		cfg := core.DeviceConfig(core.Scheme4PS, core.CaseStudyOptions())
		cfg.Geometry.Channels = ch
		return cfg.Geometry.Planes()
	}
	jobs := make([]ReplayJob, len(channels))
	for i, ch := range channels {
		jobs[i] = ReplayJob{
			Trace:  name,
			Scheme: core.Scheme4PS,
			Device: func() (storage.Device, error) {
				cfg := core.DeviceConfig(core.Scheme4PS, core.CaseStudyOptions())
				cfg.Geometry.Channels = ch
				// Hold total capacity at 32 GB: blocks per plane scales
				// inversely with the plane count.
				planes := cfg.Geometry.Planes()
				cfg.Pools[0].BlocksPerPlane = int(32 << 30 / int64(planes) / int64(cfg.Pools[0].PagesPerBlock) / int64(cfg.Pools[0].PageBytes))
				return emmc.New(cfg)
			},
		}
	}
	results, err := env.Replays("geometry", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]GeometryRow, len(channels))
	for i, ch := range channels {
		out[i] = GeometryRow{Channels: ch, PlanesPer: planesFor(ch), MRTMs: results[i].Metrics.MeanResponseNs / 1e6}
	}
	return out, nil
}

// RenderGeometry renders the sweep.
func RenderGeometry(name string, rows []GeometryRow) *report.Table {
	t := report.NewTable("Channel-count sweep ("+name+", 4PS, capacity held at 32 GB)",
		"Channels", "Total planes", "MRT (ms)")
	for _, r := range rows {
		t.AddRow(report.I(r.Channels), report.I(r.PlanesPer), report.F(r.MRTMs, 2))
	}
	return t
}

// WriteBufferRow compares the §V-B setting (RAM buffer disabled) against an
// enabled write buffer, per scheme, on one trace.
type WriteBufferRow struct {
	Name          string
	Scheme        core.Scheme
	PlainMRTMs    float64
	BufferedMRTMs float64
}

// WriteBufferStudy shows why §V-B disables SSDsim's RAM buffer for the
// page-size comparison: a few MB of write-back RAM hides most of the write
// path for every scheme, compressing the very differences Fig. 8 measures.
func WriteBufferStudy(env *Env, names ...string) ([]WriteBufferRow, error) {
	if len(names) == 0 {
		names = []string{paper.Messaging, paper.Twitter}
	}
	bufOpt := core.CaseStudyOptions()
	bufOpt.WriteBufferBytes = 4 << 20
	schemes := []core.Scheme{core.Scheme4PS, core.SchemeHPS}
	var jobs []ReplayJob
	for _, name := range names {
		for _, s := range schemes {
			jobs = append(jobs,
				ReplayJob{Trace: name, Scheme: s, Options: core.CaseStudyOptions()},
				ReplayJob{Trace: name, Scheme: s, Options: bufOpt})
		}
	}
	results, err := env.Replays("write-buffer", jobs)
	if err != nil {
		return nil, err
	}
	var out []WriteBufferRow
	for i, name := range names {
		for si, s := range schemes {
			base := 2 * (i*len(schemes) + si)
			out = append(out, WriteBufferRow{
				Name:          name,
				Scheme:        s,
				PlainMRTMs:    results[base].Metrics.MeanResponseNs / 1e6,
				BufferedMRTMs: results[base+1].Metrics.MeanResponseNs / 1e6,
			})
		}
	}
	return out, nil
}

// RenderWriteBuffer renders the study.
func RenderWriteBuffer(rows []WriteBufferRow) *report.Table {
	t := report.NewTable("RAM write buffer: the layer sec. V-B disables (MRT, ms)",
		"Trace", "Scheme", "Disabled (paper)", "4 MB buffer")
	for _, r := range rows {
		t.AddRow(r.Name, r.Scheme.String(), report.F(r.PlainMRTMs, 2), report.F(r.BufferedMRTMs, 2))
	}
	return t
}

// ReadAheadRow reports prefetch accuracy on one trace — Implication 3's
// spatial-locality face: a device-side read-ahead can only pay off as often
// as reads are sequential, which Table IV caps below 30% for most traces.
type ReadAheadRow struct {
	Name        string
	SpatialPct  float64
	AccuracyPct float64 // prefetch hits / prefetched sectors
	PlainMRTMs  float64
	RAMRTMs     float64
}

// ReadAheadStudy replays traces with an 8-page read-ahead into a 4 MB
// buffer and measures how often the prefetched data is actually used.
func ReadAheadStudy(env *Env, names ...string) ([]ReadAheadRow, error) {
	if len(names) == 0 {
		names = []string{paper.Movie, paper.Music, paper.Twitter}
	}
	readAheadDevice := func() (storage.Device, error) {
		cfg := core.DeviceConfig(core.Scheme4PS, MeasuredDeviceOptions())
		cfg.RAMBufferBytes = 4 << 20
		cfg.ReadAheadPages = 8
		return emmc.New(cfg)
	}
	jobs := make([]ReplayJob, 0, 2*len(names))
	for _, name := range names {
		jobs = append(jobs,
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Options: MeasuredDeviceOptions()},
			ReplayJob{Trace: name, Scheme: core.Scheme4PS, Device: readAheadDevice})
	}
	results, err := env.Replays("read-ahead", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]ReadAheadRow, len(names))
	for i, name := range names {
		plain, ra := results[2*i], results[2*i+1]
		row := ReadAheadRow{
			Name:       name,
			SpatialPct: paper.TableIV[name].SpatialPct,
			PlainMRTMs: plain.Metrics.MeanResponseNs / 1e6,
			RAMRTMs:    ra.Metrics.MeanResponseNs / 1e6,
		}
		prefetched, hits := ra.Device.PrefetchStats()
		if prefetched > 0 {
			row.AccuracyPct = float64(hits) / float64(prefetched) * 100
		}
		out[i] = row
	}
	return out, nil
}

// RenderReadAhead renders the study.
func RenderReadAhead(rows []ReadAheadRow) *report.Table {
	t := report.NewTable("Read-ahead prefetch: accuracy bounded by spatial locality",
		"Trace", "Spatial %", "Prefetch accuracy %", "MRT plain (ms)", "MRT +readahead (ms)")
	for _, r := range rows {
		t.AddRow(r.Name, report.F(r.SpatialPct, 1), report.F(r.AccuracyPct, 1),
			report.F(r.PlainMRTMs, 2), report.F(r.RAMRTMs, 2))
	}
	return t
}

// EnsembleResult reports the spread of the Fig. 8 headline numbers across
// independently seeded trace sets — the reproduction's error bars.
type EnsembleResult struct {
	Seeds          []uint64
	AvgReductions  []float64 // per-seed average HPS-vs-4PS MRT reduction
	BestReductions []float64
	UtilGains      []float64 // per-seed average HPS-vs-8PS utilization gain
}

// Mean and spread helpers.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std /= float64(len(xs))
	return mean, mathSqrt(std)
}

func mathSqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	// Newton iterations suffice here and avoid importing math for one call.
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}

// Fig8Ensemble runs the case study across n seeds. Each seed gets its own
// trace cache but inherits the caller's worker pool and observability.
func Fig8Ensemble(env *Env, n int) (EnsembleResult, error) {
	if n <= 0 {
		n = 5
	}
	var res EnsembleResult
	for i := 0; i < n; i++ {
		seed := uint64(1000 + i*7919)
		inner := NewEnv(seed)
		inner.Workers = env.Workers
		inner.Telemetry = env.Telemetry
		inner.Tracer = env.Tracer
		cs, err := CaseStudy(inner)
		if err != nil {
			return res, err
		}
		res.Seeds = append(res.Seeds, seed)
		res.AvgReductions = append(res.AvgReductions, cs.AverageReduction())
		res.BestReductions = append(res.BestReductions, cs.Best().MRTReductionVs4PS())
		res.UtilGains = append(res.UtilGains, cs.AverageUtilGain())
	}
	return res, nil
}

// RenderEnsemble renders the spread.
func RenderEnsemble(r EnsembleResult) *report.Table {
	t := report.NewTable("Fig. 8/9 headline spread across independent trace seeds",
		"Metric", "Mean", "Std dev", "Seeds")
	m, s := meanStd(r.AvgReductions)
	t.AddRow("avg HPS MRT reduction", report.Pct(m, 1)+"%", report.Pct(s, 2)+"%", report.I(int64(len(r.Seeds))))
	m, s = meanStd(r.BestReductions)
	t.AddRow("best HPS MRT reduction", report.Pct(m, 1)+"%", report.Pct(s, 2)+"%", report.I(int64(len(r.Seeds))))
	m, s = meanStd(r.UtilGains)
	t.AddRow("avg HPS util gain vs 8PS", report.Pct(m, 1)+"%", report.Pct(s, 2)+"%", report.I(int64(len(r.Seeds))))
	return t
}
