package experiments

import (
	"bytes"
	"math"
	"testing"

	"emmcio/internal/core"
	"emmcio/internal/paper"
)

// The tests in this file are the reproduction's integration gate: each one
// asserts the published *shape* of a table or figure on freshly generated
// traces. Absolute values are compared in EXPERIMENTS.md, not here.

func TestTableIRoster(t *testing.T) {
	tb := TableI()
	if tb.Rows() != 18 {
		t.Fatalf("Table I rows %d, want 18", tb.Rows())
	}
}

func TestTableIIICloseToPaper(t *testing.T) {
	res := TableIII(DefaultEnv())
	if len(res.Measured) != 25 {
		t.Fatalf("%d rows, want 25", len(res.Measured))
	}
	for i, name := range res.Names {
		m, p := res.Measured[i], res.Published[i]
		if m.Requests != paper.EffectiveRequests(name) {
			t.Errorf("%s: %d requests, want %d", name, m.Requests, paper.EffectiveRequests(name))
		}
		if math.Abs(m.WriteReqPct-p.WriteReqPct) > 3 {
			t.Errorf("%s: write%% %.1f vs paper %.1f", name, m.WriteReqPct, p.WriteReqPct)
		}
	}
	var buf bytes.Buffer
	if err := res.Render().WriteText(&buf); err != nil || buf.Len() == 0 {
		t.Fatal("render failed")
	}
}

func TestFig3Shape(t *testing.T) {
	res, err := Fig3(DefaultEnv(), 3)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points
	if len(pts) != 13 { // 4KB..16MB doubling
		t.Fatalf("%d points, want 13", len(pts))
	}
	for i, p := range pts {
		if p.ReadMBs > 0 && p.ReadMBs <= p.WriteMBs {
			t.Errorf("size %d: read %.1f <= write %.1f (reads must be faster)",
				p.SizeBytes, p.ReadMBs, p.WriteMBs)
		}
		if i > 0 && p.WriteMBs < pts[i-1].WriteMBs*0.98 {
			t.Errorf("write throughput decreased at %d bytes", p.SizeBytes)
		}
		if p.SizeBytes > 256*1024 && p.ReadMBs != 0 {
			t.Errorf("read series extends past 256 KB")
		}
	}
	// Endpoint bands (paper: read 13.94->99.65, write 5.18->56.15 MB/s).
	r4 := pts[0].ReadMBs
	if r4 < 5 || r4 > 25 {
		t.Errorf("4KB read throughput %.1f MB/s, want near the paper's 13.94", r4)
	}
	var r256 float64
	for _, p := range pts {
		if p.SizeBytes == 256*1024 {
			r256 = p.ReadMBs
		}
	}
	if r256 < 50 || r256 > 200 {
		t.Errorf("256KB read throughput %.1f MB/s, want near the paper's 99.65", r256)
	}
	w4 := pts[0].WriteMBs
	if w4 < 1 || w4 > 12 {
		t.Errorf("4KB write throughput %.1f MB/s, want near the paper's 5.18", w4)
	}
	w16m := pts[len(pts)-1].WriteMBs
	if w16m < 20 || w16m > 120 {
		t.Errorf("16MB write throughput %.1f MB/s, want near the paper's 56.15", w16m)
	}
	if w16m/w4 < 3 {
		t.Errorf("write throughput rises only %.1fx from 4KB to 16MB", w16m/w4)
	}
}

func TestTableIVCloseToPaper(t *testing.T) {
	res, err := TableIV(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measured) != 25 {
		t.Fatalf("%d rows, want 25", len(res.Measured))
	}
	for i, name := range res.Names {
		m, p := res.Measured[i], res.Published[i]
		if relDiff(m.DurationSec, p.DurationSec) > 0.06 {
			t.Errorf("%s: duration %.0f vs paper %.0f", name, m.DurationSec, p.DurationSec)
		}
		if relDiff(m.ArrivalRate, p.ArrivalRate) > 0.15 {
			t.Errorf("%s: arrival rate %.2f vs paper %.2f", name, m.ArrivalRate, p.ArrivalRate)
		}
		if math.Abs(m.SpatialPct-p.SpatialPct) > 6 {
			t.Errorf("%s: spatial %.1f vs paper %.1f", name, m.SpatialPct, p.SpatialPct)
		}
		if math.Abs(m.TemporalPct-p.TemporalPct) > 7 {
			t.Errorf("%s: temporal %.1f vs paper %.1f", name, m.TemporalPct, p.TemporalPct)
		}
		// Response includes service.
		if m.MeanRespMs < m.MeanServMs {
			t.Errorf("%s: response %.2f below service %.2f", name, m.MeanRespMs, m.MeanServMs)
		}
	}
	// Characteristic 3 shape: most traces serve most requests immediately.
	high := 0
	for _, m := range res.Measured[:18] {
		if m.NoWaitPct >= 63 {
			high++
		}
	}
	if high < 12 {
		t.Errorf("only %d/18 traces have NoWait >= 63%%; paper reports 15", high)
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestFig4Shape(t *testing.T) {
	res := Fig4(DefaultEnv())
	if len(res.Dists) != 18 {
		t.Fatalf("%d distributions, want 18", len(res.Dists))
	}
	inBand := 0
	for i, name := range res.Names {
		p4 := res.Dists[i].Single4KFraction()
		if paper.NotP4Majority[name] {
			continue
		}
		if p4 >= paper.Char2MinP4-0.03 && p4 <= paper.Char2MaxP4+0.03 {
			inBand++
		}
	}
	if inBand < 14 {
		t.Errorf("only %d traces in the Characteristic-2 band, want 15", inBand)
	}
}

func TestFig5MostResponsesFast(t *testing.T) {
	res, err := Fig5(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5: "a vast majority of requests can be processed within 16 ms"
	// and few exceed 128 ms. The data-heavy traces (Booting, CameraVideo,
	// Installing — the paper's own high-MRT group) carry the long tail.
	dataHeavy := map[string]bool{paper.Booting: true, paper.CameraVideo: true, paper.Installing: true}
	var sum16, n float64
	for i, name := range res.Names {
		fr := res.Dists[i].Response.Fractions()
		within16 := fr[0] + fr[1] + fr[2] + fr[3]
		sum16 += within16
		n++
		if within16 < 0.55 {
			t.Errorf("%s: only %.2f of responses within 16 ms", name, within16)
		}
		limit := 0.05
		if dataHeavy[name] {
			limit = 0.15
		}
		if over128 := fr[len(fr)-1]; over128 > limit {
			t.Errorf("%s: %.3f of responses above 128 ms", name, over128)
		}
	}
	if sum16/n < 0.75 {
		t.Errorf("across traces only %.2f of responses within 16 ms on average", sum16/n)
	}
}

func TestFig6InterarrivalShape(t *testing.T) {
	res := Fig6(DefaultEnv())
	fatTail := 0
	for i, name := range res.Names {
		fr := res.Dists[i].Interarrival.Fractions()
		if fr[len(fr)-1] > 0.20 {
			fatTail++
		}
		if name == paper.Movie && fr[0] < 0.5 {
			t.Errorf("Movie: only %.2f of gaps below 1 ms", fr[0])
		}
	}
	if fatTail < 9 || fatTail > 11 {
		t.Errorf("%d traces with >20%% gaps above 16 ms, paper reports 10", fatTail)
	}
}

func TestFig7ComboShape(t *testing.T) {
	res, err := Fig7(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dists) != 7 {
		t.Fatalf("%d combos, want 7", len(res.Dists))
	}
	// Fig. 7c: all combos keep >20% of gaps above 4 ms except Music/FB.
	for i, name := range res.Names {
		fr := res.Dists[i].Interarrival.Fractions()
		over4 := fr[3] + fr[4] + fr[5]
		if name == paper.MusicFB {
			if over4 > 0.25 {
				t.Errorf("Music/FB: %.2f of gaps above 4 ms, should be the low outlier", over4)
			}
			continue
		}
		if over4 < 0.20 {
			t.Errorf("%s: only %.2f of gaps above 4 ms", name, over4)
		}
	}
}

func TestCaseStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("case study replays 54 device-trace pairs")
	}
	res, err := CaseStudy(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 {
		t.Fatalf("%d rows, want 18", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Fig. 8: HPS beats 4PS on every trace; 8PS is close to HPS.
		if row.MRTMs[2] >= row.MRTMs[0] {
			t.Errorf("%s: HPS MRT %.2f not below 4PS %.2f", row.Name, row.MRTMs[2], row.MRTMs[0])
		}
		if rel := row.MRTMs[1] / row.MRTMs[2]; rel < 0.85 || rel > 1.3 {
			t.Errorf("%s: 8PS/HPS MRT ratio %.2f, want near 1 (paper: very similar)", row.Name, rel)
		}
		// Fig. 9: HPS matches 4PS utilization exactly; 8PS never exceeds it.
		if row.Util[2] != 1.0 || row.Util[0] != 1.0 {
			t.Errorf("%s: HPS/4PS utilization %.3f/%.3f, want 1.0", row.Name, row.Util[2], row.Util[0])
		}
		if row.Util[1] > 1.0 {
			t.Errorf("%s: 8PS utilization %.3f above 1", row.Name, row.Util[1])
		}
	}
	// Headline shapes.
	if best := res.Best(); best.Name != paper.Fig8BestApp {
		t.Errorf("largest MRT reduction on %s (%.1f%%), paper reports %s",
			best.Name, best.MRTReductionVs4PS()*100, paper.Fig8BestApp)
	}
	if avg := res.AverageReduction(); avg < 0.25 {
		t.Errorf("average MRT reduction %.1f%%, want a substantial fraction of the paper's 61.9%%", avg*100)
	}
	if worst := res.Worst(); worst.MRTReductionVs4PS() < 0.10 {
		t.Errorf("worst-case reduction %.1f%% too small (paper's worst is 24%%)",
			worst.MRTReductionVs4PS()*100)
	}
	// Fig. 9 headlines: Music among the biggest gains; average near 13.1%.
	var musicGain float64
	for _, row := range res.Rows {
		if row.Name == paper.Fig9BestApp {
			musicGain = row.UtilGainVs8PS()
		}
	}
	if musicGain < 0.15 {
		t.Errorf("Music utilization gain %.1f%%, paper reports 24.2%%", musicGain*100)
	}
	if avg := res.AverageUtilGain(); math.Abs(avg-paper.Fig9AverageGain) > 0.06 {
		t.Errorf("average utilization gain %.1f%%, paper reports 13.1%%", avg*100)
	}
}

func TestTracerOverheadNearTwoPercent(t *testing.T) {
	res, err := TracerOverhead(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range res.Names {
		o := res.Overheads[i]
		if math.Abs(o.RequestOverhead-0.02) > 0.006 {
			t.Errorf("%s: overhead %.4f, paper reports ~2%%", name, o.RequestOverhead)
		}
	}
}

func TestCharacteristicsAllHold(t *testing.T) {
	findings, err := Characteristics(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 6 {
		t.Fatalf("%d findings, want 6", len(findings))
	}
	for _, f := range findings {
		if !f.Holds {
			t.Errorf("Characteristic %d does not hold: %s", f.ID, f.Evidence)
		}
	}
}

func TestImplicationAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations replay many device-trace pairs")
	}
	env := DefaultEnv()

	p1, err := Implication1Parallelism(env, paper.Messaging, paper.Twitter)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p1 {
		// Small-request traces gain little from interleaving (Implication 1):
		// the simple controller is within 2x of the interleaved one, while
		// most requests already wait for nothing.
		if r.InterleaveMRTMs <= 0 || r.SimpleMRTMs/r.InterleaveMRTMs > 2.5 {
			t.Errorf("%s: simple %.2fms vs interleave %.2fms — parallelism matters too much",
				r.Name, r.SimpleMRTMs, r.InterleaveMRTMs)
		}
	}

	p2, err := Implication2IdleGC(env, paper.Twitter)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p2 {
		if r.IdleAbsorbedMs == 0 {
			t.Errorf("%s: idle GC absorbed nothing; device too large for the trace?", r.Name)
		}
		if r.IdleStallMs >= r.ForegroundStallMs {
			t.Errorf("%s: idle GC stalls %.1f not below foreground %.1f",
				r.Name, r.IdleStallMs, r.ForegroundStallMs)
		}
		if r.IdleMRTMs > r.ForegroundMRTMs*1.02 {
			t.Errorf("%s: idle-GC MRT %.2f worse than foreground %.2f",
				r.Name, r.IdleMRTMs, r.ForegroundMRTMs)
		}
	}

	p3, err := Implication3Buffer(env, []int{4, 64}, paper.Twitter)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p3 {
		// Implication 3: hit rate is bounded by the weak temporal locality.
		if r.HitRatePct > r.TemporalPct+15 {
			t.Errorf("%s/%dMB: hit rate %.1f%% far above temporal locality %.1f%%",
				r.Name, r.BufferMB, r.HitRatePct, r.TemporalPct)
		}
	}

	p4, err := Implication4Wear(env, paper.Twitter)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p4 {
		if r.TotalErases == 0 {
			t.Errorf("%s/%v: no erases; shrink the device further", r.Name, r.Policy)
		}
	}
	// Round-robin must keep the spread tight without extra moves.
	for _, r := range p4 {
		if r.Policy.String() != "round-robin" {
			continue
		}
		if r.MaxErases-r.MinErases > r.MaxErases/2+2 {
			t.Errorf("%s: wear spread %d..%d too wide for round-robin leveling",
				r.Name, r.MinErases, r.MaxErases)
		}
		if r.LevelMoves != 0 {
			t.Errorf("%s: round-robin made %d leveling moves", r.Name, r.LevelMoves)
		}
	}

	p5, err := Implication5SLC(env, paper.Messaging)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p5 {
		if r.SLCMRTMs >= r.MLCMRTMs {
			t.Errorf("%s: SLC-mode MRT %.2f not below MLC %.2f", r.Name, r.SLCMRTMs, r.MLCMRTMs)
		}
	}

	tables := RenderAblations(p1, p2, p3, p4, p5)
	if len(tables) != 5 {
		t.Fatalf("%d ablation tables, want 5", len(tables))
	}
}

// The SLC-cache hybrid (Implications 1+5 combined): faster than plain HPS
// on 4 KB-dominant traces, at a documented capacity cost.
func TestSLCCacheHybrid(t *testing.T) {
	env := DefaultEnv()
	rows, err := Implication5SLCCache(env, paper.Messaging)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.HPSSLCMRTMs >= r.HPSMRTMs {
			t.Errorf("%s: SLC-cache MRT %.2f not below HPS %.2f", r.Name, r.HPSSLCMRTMs, r.HPSMRTMs)
		}
		if r.HPSSLCCapacityGB >= r.HPSCapacityGB {
			t.Errorf("%s: SLC cache should cost capacity (%.0f vs %.0f GB)",
				r.Name, r.HPSSLCCapacityGB, r.HPSCapacityGB)
		}
		// Fig. 10 arithmetic: HPS 32 GB; SLC variant loses half the 4 KB
		// pool = 8 GB.
		if r.HPSCapacityGB != 32 || r.HPSSLCCapacityGB != 24 {
			t.Errorf("%s: capacities %.0f/%.0f GB, want 32/24", r.Name, r.HPSCapacityGB, r.HPSSLCCapacityGB)
		}
	}
}

// MLC pairing preserves the mean but adds variance; the replayed MRT stays
// within a few percent of the unpaired model.
func TestMLCPairingPreservesMeanService(t *testing.T) {
	env := DefaultEnv()
	base := core.DefaultTiming()
	paired := core.DefaultTiming()
	paired.MLCPairing = true
	paired.PairingSpread = 0.8

	tr1 := env.Trace(paper.Messaging)
	m1, err := core.Replay(core.Scheme4PS, core.Options{Timing: &base}, tr1)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := env.Trace(paper.Messaging)
	m2, err := core.Replay(core.Scheme4PS, core.Options{Timing: &paired}, tr2)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(m2.MeanServiceNs, m1.MeanServiceNs) > 0.10 {
		t.Fatalf("pairing moved mean service %.2f -> %.2f ms",
			m1.MeanServiceNs/1e6, m2.MeanServiceNs/1e6)
	}
}

// The validation checklist passes end to end — the programmatic form of
// EXPERIMENTS.md.
func TestValidateChecklist(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	checks, err := Validate(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 12 {
		t.Fatalf("only %d checks", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("FAIL: %s — paper %s, measured %s", c.Claim, c.Paper, c.Measured)
		}
	}
}

// Lifetime projection: HPS sustains the workload at least as long as 8PS
// (the §V-A lifetime argument), since it wastes no flash on padding.
func TestLifetimeProjection(t *testing.T) {
	rows, err := Lifetime(DefaultEnv(), paper.Twitter)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 schemes", len(rows))
	}
	days := map[core.Scheme]float64{}
	for _, r := range rows {
		if r.ProjectedDays <= 0 || r.FlashWrittenPerDayGB <= 0 {
			t.Fatalf("degenerate projection %+v", r)
		}
		days[r.Scheme] = r.ProjectedDays
	}
	if days[core.SchemeHPS] < days[core.Scheme8PS]*0.99 {
		t.Errorf("HPS projected %f days, below 8PS %f — padding waste should cost 8PS lifetime",
			days[core.SchemeHPS], days[core.Scheme8PS])
	}
	if RenderLifetime(rows).Rows() != 3 {
		t.Fatal("render mismatch")
	}
}

// Rate sensitivity: compressing arrivals makes the HPS advantage grow — the
// queueing mechanism behind Fig. 8's data-intensive outliers.
func TestRateSweepMonotone(t *testing.T) {
	pts, err := RateSweep(DefaultEnv(), paper.Twitter, []float64{1.0, 0.25, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for i := range pts {
		if pts[i].MRTHPSMs >= pts[i].MRT4PSMs {
			t.Errorf("factor %.2f: HPS %.2f not below 4PS %.2f",
				pts[i].Factor, pts[i].MRTHPSMs, pts[i].MRT4PSMs)
		}
		if i > 0 && pts[i].Rate <= pts[i-1].Rate {
			t.Errorf("rate did not rise with compression")
		}
	}
	// Deep saturation (20x the original rate) must widen the HPS advantage
	// beyond the baseline; the mid-range may dip as queueing regimes shift.
	if pts[2].Reduction() <= pts[0].Reduction() {
		t.Errorf("reduction at 20x rate (%.1f%%) not above baseline (%.1f%%)",
			pts[2].Reduction()*100, pts[0].Reduction()*100)
	}
}

// DFTL mapping cache: hit rate grows with cache size, and a bigger cache
// never hurts MRT — but even 256 KB leaves misses because the workloads'
// localities are weak (Implication 3 in its realistic form).
func TestMapCacheSweep(t *testing.T) {
	rows, err := Implication3MapCache(DefaultEnv(), []int{16, 256}, paper.Twitter)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	small, big := rows[0], rows[1]
	if big.HitRatePct < small.HitRatePct {
		t.Errorf("hit rate fell with a bigger cache: %.1f%% -> %.1f%%", small.HitRatePct, big.HitRatePct)
	}
	if big.MRTMs > small.MRTMs*1.01 {
		t.Errorf("MRT rose with a bigger cache: %.2f -> %.2f", small.MRTMs, big.MRTMs)
	}
	if small.MapReadsPer1k == 0 {
		t.Error("small cache produced no translation reads")
	}
	// An idealized (unbounded) map never pays translation I/O.
	opt := core.CaseStudyOptions()
	dev, err := core.NewDevice(core.Scheme4PS, opt)
	if err != nil {
		t.Fatal(err)
	}
	tr := DefaultEnv().Trace(paper.Twitter)
	if _, err := core.ReplayOn(dev, core.Scheme4PS, tr); err != nil {
		t.Fatal(err)
	}
	if dev.Metrics().MapReads != 0 {
		t.Error("unbounded mapping RAM paid translation reads")
	}
	if RenderMapCache(rows).Rows() != 2 {
		t.Error("render mismatch")
	}
}

// Offloading media to a slower SDcard degrades overall MRT even though it
// adds a second parallel device — Implication 1's SDcard warning.
func TestSDCardSplitDegrades(t *testing.T) {
	rows, err := Implication1SDCard(DefaultEnv(), paper.Music, paper.CameraVideo)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SDSharePct <= 0 {
			t.Errorf("%s: nothing went to the card", r.Name)
			continue
		}
		if r.SplitMRTMs <= r.EMMCOnlyMRTMs {
			t.Errorf("%s: split MRT %.2f not above eMMC-only %.2f",
				r.Name, r.SplitMRTMs, r.EMMCOnlyMRTMs)
		}
	}
}

// Aging: read MRT is flat through most of rated life, then climbs as ECC
// retries kick in past the endurance budget.
func TestAgingCurve(t *testing.T) {
	pts, err := Aging(DefaultEnv(), paper.Movie, []float64{0, 1.0, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].RetryFactor != 1 {
		t.Errorf("fresh retry factor %v", pts[0].RetryFactor)
	}
	if pts[2].RetryFactor <= pts[0].RetryFactor {
		t.Error("retry factor did not grow with wear")
	}
	if pts[2].MRTMs <= pts[0].MRTMs {
		t.Errorf("aged MRT %.2f not above fresh %.2f", pts[2].MRTMs, pts[0].MRTMs)
	}
	if pts[1].MRTMs > pts[0].MRTMs*1.25 {
		t.Errorf("within-rated-life MRT penalty too large: %.2f vs %.2f", pts[1].MRTMs, pts[0].MRTMs)
	}
}

// Utilization: every trace leaves the measured device under 40% busy, most
// far below — why extra parallelism buys little (Implication 1) and why
// idle gaps can absorb GC (Implication 2).
func TestDeviceUtilizationLow(t *testing.T) {
	rows, err := DeviceUtilization(DefaultEnv(), paper.Twitter, paper.Idle, paper.Messaging)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DevicePct > 40 {
			t.Errorf("%s: device %.1f%% busy, smartphone traces should leave it idle", r.Name, r.DevicePct)
		}
	}
	if TableII().Rows() != 9 {
		t.Error("Table II roster drifted")
	}
}

// GC threshold: a lazier trigger (smaller threshold) defers collections but
// cannot reduce the total erase work; all points serve the trace correctly.
func TestGCThresholdSweep(t *testing.T) {
	rows, err := GCThresholdSweep(DefaultEnv(), paper.Twitter, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Erases == 0 {
			t.Errorf("threshold %d: GC never fired", r.Threshold)
		}
	}
	if RenderGCThreshold(paper.Twitter, rows).Rows() != 2 {
		t.Error("render mismatch")
	}
}

// HPS pool ratio: Table V's 512+256 split serves Twitter without one pool
// thrashing; an extreme split starves the 4 KB pool and pays GC stalls.
func TestHPSPoolRatioSweep(t *testing.T) {
	rows, err := HPSPoolRatioSweep(DefaultEnv(), paper.Twitter, [][2]int{{512, 256}, {128, 448}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	tableV, starved := rows[0], rows[1]
	if starved.GCStallMs < tableV.GCStallMs {
		t.Errorf("starving the 4K pool (%d blocks) did not raise GC stalls: %.1f vs %.1f",
			starved.Blocks4K, starved.GCStallMs, tableV.GCStallMs)
	}
	if tableV.MRTMs > starved.MRTMs {
		t.Errorf("Table V split MRT %.3f above the starved split %.3f", tableV.MRTMs, starved.MRTMs)
	}
}

func TestProfilesTable(t *testing.T) {
	if ProfilesTable().Rows() != 25 {
		t.Fatal("profiles table should list all 25 traces")
	}
}

// The sweep runner is deterministic: any worker-pool width produces exactly
// the width-1 (strict plan order, inline execution) results, row for row.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 108 replays")
	}
	serialEnv := DefaultEnv()
	serialEnv.Workers = 1
	serial, err := CaseStudy(serialEnv)
	if err != nil {
		t.Fatal(err)
	}
	wideEnv := DefaultEnv()
	wideEnv.Workers = 8
	wide, err := CaseStudy(wideEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(wide.Rows) {
		t.Fatal("row count mismatch")
	}
	for i := range serial.Rows {
		if serial.Rows[i] != wide.Rows[i] {
			t.Fatalf("row %d differs:\n-j 1 %+v\n-j 8 %+v",
				i, serial.Rows[i], wide.Rows[i])
		}
	}
}

// Same determinism check on an ablation that mixes GC policies and a
// Prepare hook — ordering must match the plan, not completion order.
func TestSweepDeterminismAblation(t *testing.T) {
	serialEnv := DefaultEnv()
	serialEnv.Workers = 1
	serial, err := Implication2IdleGC(serialEnv, paper.Twitter, paper.Messaging)
	if err != nil {
		t.Fatal(err)
	}
	wideEnv := DefaultEnv()
	wideEnv.Workers = 8
	wide, err := Implication2IdleGC(wideEnv, paper.Twitter, paper.Messaging)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(wide) {
		t.Fatal("row count mismatch")
	}
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("row %d differs:\n-j 1 %+v\n-j 8 %+v", i, serial[i], wide[i])
		}
	}
}

// A command queue buys almost nothing on typical traces (NoWait is already
// high) but rescues the saturated Booting storm — Implication 1 both ways.
func TestCommandQueueStudy(t *testing.T) {
	rows, err := CommandQueueStudy(DefaultEnv(), paper.Messaging, paper.Booting)
	if err != nil {
		t.Fatal(err)
	}
	msg, boot := rows[0], rows[1]
	if gain := 1 - msg.CQMRTMs/msg.FIFOMRTMs; gain > 0.35 {
		t.Errorf("Messaging CQ gain %.1f%% too large for a %.0f%% NoWait trace",
			gain*100, msg.NoWaitPct)
	}
	if boot.CQMRTMs >= boot.FIFOMRTMs {
		t.Errorf("Booting: CQ %.2f not below FIFO %.2f under saturation",
			boot.CQMRTMs, boot.FIFOMRTMs)
	}
}

// Doubling channels beyond the paper's 2 moves typical-trace MRT by little.
func TestGeometrySweepDiminishingReturns(t *testing.T) {
	rows, err := GeometrySweep(DefaultEnv(), paper.Twitter, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	two, four := rows[0], rows[1]
	if four.MRTMs > two.MRTMs*1.001 {
		t.Errorf("more channels made things worse: %.3f -> %.3f", two.MRTMs, four.MRTMs)
	}
	if gain := 1 - four.MRTMs/two.MRTMs; gain > 0.45 {
		t.Errorf("doubling channels gained %.1f%%; expected diminishing returns", gain*100)
	}
}

// Exercise every renderer once: table shapes stay consistent with their
// data, and none panics on real results.
func TestAllRenderers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many replays")
	}
	env := DefaultEnv()
	if TableI().Rows() != 18 || TableII().Rows() != 9 || TableV().Rows() != 7 {
		t.Error("static tables drifted")
	}
	if got := TableIII(env).Render().Rows(); got != 25 {
		t.Errorf("Table III render %d rows", got)
	}
	t4, err := TableIV(env)
	if err != nil {
		t.Fatal(err)
	}
	if t4.Render().Rows() != 25 {
		t.Error("Table IV render")
	}
	f3, err := Fig3(env, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Render().Rows() != 13 {
		t.Error("Fig3 render")
	}
	var svg bytes.Buffer
	if err := f3.Figure().WriteLineSVG(&svg); err != nil {
		t.Error(err)
	}
	d4 := Fig4(env)
	if d4.RenderSizes().Rows() != 18 {
		t.Error("Fig4 render")
	}
	svg.Reset()
	if err := d4.SizeFigure("t").WriteStackedSVG(&svg); err != nil {
		t.Error(err)
	}
	f5, err := Fig5(env)
	if err != nil {
		t.Fatal(err)
	}
	if f5.RenderResponses().Rows() != 18 {
		t.Error("Fig5 render")
	}
	svg.Reset()
	if err := f5.ResponseFigure("t").WriteStackedSVG(&svg); err != nil {
		t.Error(err)
	}
	d6 := Fig6(env)
	if d6.RenderInterarrivals().Rows() != 18 {
		t.Error("Fig6 render")
	}
	svg.Reset()
	if err := d6.InterarrivalFigure("t").WriteStackedSVG(&svg); err != nil {
		t.Error(err)
	}
	cs, err := CaseStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	if cs.RenderFig8().Rows() != 18 || cs.RenderFig9().Rows() != 18 {
		t.Error("case study renders")
	}
	svg.Reset()
	if err := cs.Fig8Figure().WriteBarSVG(&svg); err != nil {
		t.Error(err)
	}
	svg.Reset()
	if err := cs.Fig9Figure().WriteBarSVG(&svg); err != nil {
		t.Error(err)
	}
	findings, err := Characteristics(env)
	if err != nil {
		t.Fatal(err)
	}
	if RenderFindings(findings).Rows() != 6 {
		t.Error("findings render")
	}
	oh, err := TracerOverhead(env)
	if err != nil {
		t.Fatal(err)
	}
	if oh.Render().Rows() != 3 {
		t.Error("overhead render")
	}
	util, err := DeviceUtilization(env, paper.Idle)
	if err != nil {
		t.Fatal(err)
	}
	if RenderUtilization(util).Rows() != 1 {
		t.Error("utilization render")
	}
	rs, err := RateSweep(env, paper.Messaging, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	if RenderRateSweep(paper.Messaging, rs).Rows() != 1 {
		t.Error("rate sweep render")
	}
	cq, err := CommandQueueStudy(env, paper.Messaging)
	if err != nil {
		t.Fatal(err)
	}
	if RenderCQ(cq).Rows() != 1 {
		t.Error("CQ render")
	}
	geo, err := GeometrySweep(env, paper.Messaging, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if RenderGeometry(paper.Messaging, geo).Rows() != 1 {
		t.Error("geometry render")
	}
	life, err := Lifetime(env, paper.Messaging)
	if err != nil {
		t.Fatal(err)
	}
	if RenderLifetime(life).Rows() != 3 {
		t.Error("lifetime render")
	}
	ag, err := Aging(env, paper.Messaging, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if RenderAging(paper.Messaging, ag).Rows() != 1 {
		t.Error("aging render")
	}
}

// The write buffer hides most write latency for BOTH schemes, compressing
// the 4PS-vs-HPS gap — the fairness reason §V-B disables it.
func TestWriteBufferStudy(t *testing.T) {
	rows, err := WriteBufferStudy(DefaultEnv(), paper.Messaging)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	var gap, bufGap float64
	for _, r := range rows {
		if r.BufferedMRTMs >= r.PlainMRTMs {
			t.Errorf("%s/%s: buffered MRT %.2f not below plain %.2f",
				r.Name, r.Scheme, r.BufferedMRTMs, r.PlainMRTMs)
		}
	}
	gap = rows[0].PlainMRTMs - rows[1].PlainMRTMs          // 4PS - HPS, unbuffered
	bufGap = rows[0].BufferedMRTMs - rows[1].BufferedMRTMs // with the buffer
	if bufGap >= gap {
		t.Errorf("the buffer should compress the scheme gap: %.2f -> %.2f ms", gap, bufGap)
	}
}

// Read-ahead accuracy tracks the trace's spatial locality: weakly
// sequential traces waste most prefetches (Implication 3's other face).
func TestReadAheadStudy(t *testing.T) {
	rows, err := ReadAheadStudy(DefaultEnv(), paper.Movie, paper.Twitter)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AccuracyPct > r.SpatialPct+25 {
			t.Errorf("%s: prefetch accuracy %.1f%% far above spatial locality %.1f%%",
				r.Name, r.AccuracyPct, r.SpatialPct)
		}
		if r.RAMRTMs > r.PlainMRTMs*1.02 {
			t.Errorf("%s: read-ahead hurt MRT %.2f -> %.2f", r.Name, r.PlainMRTMs, r.RAMRTMs)
		}
	}
}

// The headline numbers are stable across trace seeds: the reproduction's
// conclusions are not one lucky sample.
func TestFig8EnsembleStable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the case study three times")
	}
	res, err := Fig8Ensemble(DefaultEnv(), 3)
	if err != nil {
		t.Fatal(err)
	}
	mean, std := meanStd(res.AvgReductions)
	if mean < 0.25 {
		t.Errorf("ensemble mean reduction %.1f%% too small", mean*100)
	}
	if std > 0.05 {
		t.Errorf("ensemble reduction spread %.1f%% too noisy", std*100)
	}
	um, us := meanStd(res.UtilGains)
	if um < 0.08 || us > 0.02 {
		t.Errorf("utilization gain %.1f%% ± %.2f%% unstable", um*100, us*100)
	}
}
