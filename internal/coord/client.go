package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"emmcio/internal/cliutil"
	"emmcio/internal/server"
)

// Client is the coordinator's HTTP view of one emmcd worker: health
// probes, sweep submission, job polling, and cancellation over the
// server's existing /healthz and /v1 surfaces. Every request carries the
// client's timeout, so a hung worker costs bounded wall clock, never a
// stuck coordinator goroutine.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a worker client for the given base URL ("http://host:
// port", trailing slash tolerated) with a per-request timeout.
func NewClient(base string, timeout time.Duration) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: timeout},
	}
}

// Base returns the worker's base URL; logs and errors name workers by it.
func (c *Client) Base() string { return c.base }

// BackpressureError is a worker's 429: the queue is full. After is the
// server's Retry-After hint (0 when absent); Queued/QueueCapacity echo
// the JSON body's queue state so backoff can be informed rather than
// blind.
type BackpressureError struct {
	After         time.Duration
	Queued        int
	QueueCapacity int
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("worker queue full (%d/%d queued, retry after %s)",
		e.Queued, e.QueueCapacity, e.After)
}

// StatusError is any other non-2xx worker response.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("worker returned %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// Retryable reports whether the failure is a worker-side condition a
// different (or later) worker could serve: 5xx and 503-draining are;
// 4xx spec rejections are not — the same spec fails everywhere.
func (e *StatusError) Retryable() bool { return e.Code >= 500 }

// Health probes GET /healthz. A draining worker answers 503, which reads
// as unhealthy here — exactly right for routing: it is finishing old work
// but must not receive new shards.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Code: resp.StatusCode, Body: readSnippet(resp.Body)}
	}
	return nil
}

// SubmitSweep POSTs a shard's spec to /v1/sweeps and returns the job id.
// A 429 comes back as *BackpressureError carrying the Retry-After header
// and queue state; other non-202s as *StatusError.
func (c *Client) SubmitSweep(ctx context.Context, spec cliutil.SweepSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusTooManyRequests {
		be := &BackpressureError{}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
			be.After = time.Duration(secs) * time.Second
		}
		var qf server.QueueFullError
		if err := json.NewDecoder(resp.Body).Decode(&qf); err == nil {
			be.Queued, be.QueueCapacity = qf.Queued, qf.QueueCapacity
		}
		return "", be
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", &StatusError{Code: resp.StatusCode, Body: readSnippet(resp.Body)}
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return "", fmt.Errorf("decoding submit response: %w", err)
	}
	if sub.ID == "" {
		return "", errors.New("submit response carried no job id")
	}
	return sub.ID, nil
}

// JobStatus GETs /v1/jobs/{id}.
func (c *Client) JobStatus(ctx context.Context, id string) (server.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return server.JobStatus{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return server.JobStatus{}, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return server.JobStatus{}, &StatusError{Code: resp.StatusCode, Body: readSnippet(resp.Body)}
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.JobStatus{}, fmt.Errorf("decoding job status: %w", err)
	}
	return st, nil
}

// CancelJob DELETEs /v1/jobs/{id} — queued jobs terminate immediately,
// running ones abort between replay events. 404 is success for our
// purposes: the worker no longer knows the job, so nothing is running.
func (c *Client) CancelJob(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return &StatusError{Code: resp.StatusCode, Body: readSnippet(resp.Body)}
	}
	return nil
}

// drain discards the remaining body so the keep-alive connection is
// reusable, then closes it.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck // best-effort drain
	resp.Body.Close()
}

// readSnippet captures the head of an error body for diagnostics.
func readSnippet(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 512))
	return string(b)
}
