package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"emmcio/internal/cliutil"
	"emmcio/internal/server"
)

// Client is the coordinator's HTTP view of one emmcd worker: health
// probes, sweep submission, job polling, and cancellation over the
// server's existing /healthz and /v1 surfaces. Every request carries the
// client's timeout, so a hung worker costs bounded wall clock, never a
// stuck coordinator goroutine.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a worker client for the given base URL ("http://host:
// port", trailing slash tolerated) with a per-request timeout.
func NewClient(base string, timeout time.Duration) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: timeout},
	}
}

// Base returns the worker's base URL; logs and errors name workers by it.
func (c *Client) Base() string { return c.base }

// BackpressureError is a worker's 429: the queue is full. After is the
// server's Retry-After hint (0 when absent); Queued/QueueCapacity echo
// the JSON body's queue state so backoff can be informed rather than
// blind.
type BackpressureError struct {
	After         time.Duration
	Queued        int
	QueueCapacity int
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("worker queue full (%d/%d queued, retry after %s)",
		e.Queued, e.QueueCapacity, e.After)
}

// StatusError is any other non-2xx worker response. Kind carries the
// server's machine-readable error_kind from the uniform error envelope
// ("" when the body is not the envelope — a proxy's HTML error page, say).
type StatusError struct {
	Code int
	Kind string
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("worker returned %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// newStatusError builds a StatusError, classifying the body: every emmcd
// non-2xx is the {"error","error_kind"} envelope, so the kind decodes
// directly instead of being guessed from the status code.
func newStatusError(code int, body string) *StatusError {
	se := &StatusError{Code: code, Body: body}
	var eb server.ErrorBody
	if err := json.Unmarshal([]byte(body), &eb); err == nil {
		se.Kind = eb.ErrorKind
	}
	return se
}

// Retryable reports whether the failure is a worker-side condition a
// different (or later) worker could serve. The error kind decides when
// present: validation, not_found and conflict are properties of the
// request — the same request fails everywhere — while unavailable and
// saturated are properties of this worker right now. Without a kind
// (non-emmcd middleboxes), 5xx is the retryable line.
func (e *StatusError) Retryable() bool {
	switch e.Kind {
	case server.ErrKindValidation, server.ErrKindNotFound, server.ErrKindConflict:
		return false
	case server.ErrKindUnavailable, server.ErrKindSaturated:
		return true
	}
	return e.Code >= 500
}

// Health probes GET /healthz. A draining worker answers 503, which reads
// as unhealthy here — exactly right for routing: it is finishing old work
// but must not receive new shards.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return newStatusError(resp.StatusCode, readSnippet(resp.Body))
	}
	return nil
}

// SubmitSweep POSTs a shard's spec to /v1/sweeps and returns the job id.
// A 429 comes back as *BackpressureError carrying the Retry-After header
// and queue state; other non-202s as *StatusError.
func (c *Client) SubmitSweep(ctx context.Context, spec cliutil.SweepSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusTooManyRequests {
		be := &BackpressureError{}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
			be.After = time.Duration(secs) * time.Second
		}
		var qf server.QueueFullError
		if err := json.NewDecoder(resp.Body).Decode(&qf); err == nil {
			be.Queued, be.QueueCapacity = qf.Queued, qf.QueueCapacity
		}
		return "", be
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", newStatusError(resp.StatusCode, readSnippet(resp.Body))
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return "", fmt.Errorf("decoding submit response: %w", err)
	}
	if sub.ID == "" {
		return "", errors.New("submit response carried no job id")
	}
	return sub.ID, nil
}

// ImportDevice uploads sealed snapshot bytes to the worker's device store
// (POST /v1/devices, octet-stream) and returns the content-derived device
// id the worker archived them under. The import is idempotent on the
// worker side, so pushing an already-present snapshot is a cheap no-op.
func (c *Client) ImportDevice(ctx context.Context, sealed []byte, label string) (string, error) {
	u := c.base + "/v1/devices"
	if label != "" {
		u += "?label=" + url.QueryEscape(label)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(sealed))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return "", newStatusError(resp.StatusCode, readSnippet(resp.Body))
	}
	var dev struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dev); err != nil {
		return "", fmt.Errorf("decoding import response: %w", err)
	}
	if dev.ID == "" {
		return "", errors.New("import response carried no device id")
	}
	return dev.ID, nil
}

// JobStatus GETs /v1/jobs/{id}.
func (c *Client) JobStatus(ctx context.Context, id string) (server.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return server.JobStatus{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return server.JobStatus{}, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return server.JobStatus{}, newStatusError(resp.StatusCode, readSnippet(resp.Body))
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.JobStatus{}, fmt.Errorf("decoding job status: %w", err)
	}
	return st, nil
}

// CancelJob DELETEs /v1/jobs/{id} — queued jobs terminate immediately,
// running ones abort between replay events. 404 is success for our
// purposes: the worker no longer knows the job, so nothing is running.
func (c *Client) CancelJob(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return newStatusError(resp.StatusCode, readSnippet(resp.Body))
	}
	return nil
}

// drain discards the remaining body so the keep-alive connection is
// reusable, then closes it.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck // best-effort drain
	resp.Body.Close()
}

// readSnippet captures the head of an error body for diagnostics.
func readSnippet(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 512))
	return string(b)
}
