package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"emmcio/internal/cliutil"
	"emmcio/internal/paper"
	"emmcio/internal/server"
)

// testSpec is the cheap three-trace casestudy sweep every coordinator test
// shards: three per-trace shards at the default grain, each replaying a
// short synthetic trace under three schemes.
func testSpec() cliutil.SweepSpec {
	return cliutil.SweepSpec{
		Sweeps: []string{"casestudy"},
		Traces: []string{paper.Idle, paper.CallIn, paper.CallOut},
	}
}

// localBaseline runs spec single-process and returns its marshaled bytes —
// the ground truth every fabric configuration must reproduce exactly.
func localBaseline(t *testing.T, spec cliutil.SweepSpec) []byte {
	t.Helper()
	res, err := spec.Run(context.Background(), 0, nil, nil)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal baseline: %v", err)
	}
	return b
}

// newWorker starts a real emmcd job service behind an httptest listener.
func newWorker(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // best-effort teardown
	})
	return ts
}

// fastConfig is a Config tuned for test wall clock: millisecond backoffs
// and tight polling. The shard deadline stays generous — real replays can
// take seconds under -race; tests that need deadline-driven escapes (the
// stalling chaos worker) tighten it themselves.
func fastConfig(workers []string) Config {
	return Config{
		Workers:        workers,
		TracesPerShard: 1,
		ShardTimeout:   30 * time.Second,
		HTTPTimeout:    2 * time.Second,
		PollInterval:   5 * time.Millisecond,
		PollFailures:   2,
		HealthInterval: 25 * time.Millisecond,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
	}
}

func counters(c *Coordinator) map[string]int64 {
	m := map[string]int64{}
	c.Telemetry().EachCounter(func(name string, v int64) { m[name] = v })
	return m
}

// TestCoordinatorMatchesSingleProcess is the happy-path determinism
// contract: a sweep sharded across three healthy workers merges to the
// byte-exact single-process result.
func TestCoordinatorMatchesSingleProcess(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)

	urls := []string{
		newWorker(t, server.Config{}).URL,
		newWorker(t, server.Config{}).URL,
		newWorker(t, server.Config{}).URL,
	}
	cfg := fastConfig(urls)
	cfg.DisableLocal = true // success must come through the fleet
	c := New(cfg)
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("sharded sweep diverged from single-process run:\n got %s\nwant %s", got, want)
	}
	st := counters(c)
	if st["coord_shards_planned_total"] != 3 || st["coord_shards_completed_total"] != 3 {
		t.Errorf("shard accounting = %d planned / %d completed, want 3/3",
			st["coord_shards_planned_total"], st["coord_shards_completed_total"])
	}
	if st["coord_local_runs_total"] != 0 {
		t.Errorf("healthy fleet fell back to local %d times", st["coord_local_runs_total"])
	}
}

// chaosMode selects a stub worker's failure behavior.
type chaosMode int

const (
	// chaos429 accepts nothing: every submission is a 429 with Retry-After,
	// like a worker whose queue never drains.
	chaos429 chaosMode = iota
	// chaosStall accepts jobs that never finish: every poll says running.
	// Only the shard deadline gets a coordinator off this worker — and on
	// the way out it must DELETE the abandoned job.
	chaosStall
	// chaosDie accepts a job, answers one poll, then drops every connection
	// unread — a worker killed mid-shard.
	chaosDie
)

// chaosWorker is an httptest stub speaking just enough of the emmcd API to
// misbehave in controlled ways, counting what the coordinator does to it.
type chaosWorker struct {
	mode chaosMode
	ts   *httptest.Server

	mu      sync.Mutex
	submits int
	polls   int
	deletes int
	dead    bool
}

func newChaosWorker(t *testing.T, mode chaosMode) *chaosWorker {
	t.Helper()
	w := &chaosWorker{mode: mode}
	w.ts = httptest.NewServer(http.HandlerFunc(w.serve))
	t.Cleanup(w.ts.Close)
	return w
}

func (w *chaosWorker) serve(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	dead := w.dead
	w.mu.Unlock()
	if dead {
		// A killed process doesn't write HTTP errors; it drops the socket.
		if hj, ok := rw.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		rw.WriteHeader(http.StatusInternalServerError)
		return
	}
	switch {
	case r.URL.Path == "/healthz":
		rw.WriteHeader(http.StatusOK)
	case r.Method == http.MethodPost && r.URL.Path == "/v1/sweeps":
		w.mu.Lock()
		w.submits++
		w.mu.Unlock()
		if w.mode == chaos429 {
			rw.Header().Set("Retry-After", "0")
			rw.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(rw).Encode(server.QueueFullError{ //nolint:errcheck
				Error: "queue full", Queued: 1, QueueCapacity: 1,
			})
			return
		}
		rw.WriteHeader(http.StatusAccepted)
		fmt.Fprint(rw, `{"id":"c1"}`)
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
		w.mu.Lock()
		w.polls++
		if w.mode == chaosDie && w.polls >= 2 {
			w.dead = true
		}
		w.mu.Unlock()
		fmt.Fprint(rw, `{"id":"c1","state":"running"}`)
	case r.Method == http.MethodDelete && strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
		w.mu.Lock()
		w.deletes++
		w.mu.Unlock()
		rw.WriteHeader(http.StatusOK)
	default:
		rw.WriteHeader(http.StatusNotFound)
	}
}

func (w *chaosWorker) stats() (submits, deletes int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.submits, w.deletes
}

// TestCoordinatorSurvivesChaos is the fault-tolerance acceptance test: a
// fleet of five where the first three picks are guaranteed poison — a
// saturated 429er, a stalling blackhole, and a worker that dies mid-shard
// — must still complete the sweep byte-identical to single-process,
// entirely remotely (local fallback disabled), with the retries,
// re-routes, backpressure, and remote cancels visible in telemetry.
func TestCoordinatorSurvivesChaos(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)

	flaky := newChaosWorker(t, chaos429)
	stall := newChaosWorker(t, chaosStall)
	dying := newChaosWorker(t, chaosDie)
	// Round-robin pick hands the three shards to the three chaos workers
	// first; the two real workers only see re-routed traffic.
	cfg := fastConfig([]string{flaky.ts.URL, stall.ts.URL, dying.ts.URL,
		newWorker(t, server.Config{}).URL, newWorker(t, server.Config{}).URL})
	// Tight enough that a shard routed to the stalling worker escapes in
	// seconds, loose enough that a real replay finishes even under -race
	// on a loaded machine; the generous attempt budget keeps deadline
	// flakes from exhausting into a spurious failure.
	cfg.ShardTimeout = 5 * time.Second
	cfg.MaxAttempts = 10
	cfg.DisableLocal = true
	c := New(cfg)

	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("coordinator run under chaos: %v", err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("chaos sweep diverged from single-process run:\n got %s\nwant %s", got, want)
	}

	st := counters(c)
	if st["coord_shards_completed_total"] != 3 {
		t.Errorf("completed = %d, want 3", st["coord_shards_completed_total"])
	}
	if st["coord_shard_retries_total"] == 0 {
		t.Error("no retries recorded despite a poisoned fleet")
	}
	if st["coord_shard_reroutes_total"] == 0 {
		t.Error("no re-routes recorded despite a poisoned fleet")
	}
	if st["coord_backpressure_429_total"] == 0 {
		t.Error("no 429 backpressure recorded despite a saturated worker")
	}
	if st["coord_local_runs_total"] != 0 {
		t.Errorf("local fallback ran %d times with DisableLocal set", st["coord_local_runs_total"])
	}
	if subs, _ := flaky.stats(); subs == 0 {
		t.Error("the 429 worker was never offered a shard")
	}
	if _, dels := stall.stats(); dels == 0 {
		t.Error("the stalled worker's abandoned job was never DELETEd")
	}
}

// TestCoordinatorDegradesToLocal covers the no-fleet end of the spectrum:
// with zero workers — or only an unreachable one — every shard runs in
// process and the merged result is still byte-identical.
func TestCoordinatorDegradesToLocal(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)

	t.Run("no_workers", func(t *testing.T) {
		c := New(fastConfig(nil))
		res, err := c.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		got, _ := json.Marshal(res)
		if string(got) != string(want) {
			t.Errorf("local degrade diverged:\n got %s\nwant %s", got, want)
		}
		if st := counters(c); st["coord_local_runs_total"] != 3 {
			t.Errorf("local runs = %d, want 3", st["coord_local_runs_total"])
		}
	})

	t.Run("unreachable_worker", func(t *testing.T) {
		// A listener that closed before the sweep: probes fail, the worker
		// never becomes available, and shards go straight to local without
		// burning the attempt budget on it.
		gone := httptest.NewServer(http.NotFoundHandler())
		gone.Close()
		c := New(fastConfig([]string{gone.URL}))
		res, err := c.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		got, _ := json.Marshal(res)
		if string(got) != string(want) {
			t.Errorf("local degrade diverged:\n got %s\nwant %s", got, want)
		}
		st := counters(c)
		if st["coord_local_runs_total"] != 3 {
			t.Errorf("local runs = %d, want 3", st["coord_local_runs_total"])
		}
		if st["coord_shard_attempts_total"] != 0 {
			t.Errorf("attempts = %d on a provably-down worker, want 0", st["coord_shard_attempts_total"])
		}
	})

	t.Run("disable_local_fails", func(t *testing.T) {
		cfg := fastConfig(nil)
		cfg.DisableLocal = true
		if _, err := New(cfg).Run(context.Background(), spec); err == nil {
			t.Error("no workers + DisableLocal succeeded, want error")
		}
	})
}

// TestCoordinatorCancelMidSweep pins cancellation propagation: canceling
// the coordinator's context while shards are in flight returns promptly
// with ctx.Err() and DELETEs the in-flight worker jobs — no orphaned
// sweeps keep running on the fleet.
func TestCoordinatorCancelMidSweep(t *testing.T) {
	stall := newChaosWorker(t, chaosStall)
	cfg := fastConfig([]string{stall.ts.URL})
	cfg.ShardTimeout = time.Minute // only cancellation can end the attempt
	cfg.DisableLocal = true
	c := New(cfg)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, testSpec())
		errc <- err
	}()

	// Wait for at least one shard to be in flight on the worker, then pull
	// the plug.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if subs, _ := stall.stats(); subs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard reached the worker")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if _, dels := stall.stats(); dels == 0 {
		t.Error("in-flight job was not DELETEd on cancellation")
	}
}

// BenchmarkCoordinatorSweep measures the fabric's end-to-end overhead on a
// healthy three-worker fleet: shard planning, HTTP submission, polling,
// and the plan-order merge around the same three-trace casestudy sweep the
// other benchmarks replay.
func BenchmarkCoordinatorSweep(b *testing.B) {
	urls := make([]string, 3)
	for i := range urls {
		s := server.New(server.Config{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx) //nolint:errcheck
		}()
		urls[i] = ts.URL
	}
	spec := testSpec()
	cfg := fastConfig(urls)
	cfg.DisableLocal = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(cfg)
		if _, err := c.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}
