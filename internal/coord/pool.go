package coord

import (
	"context"
	"sync"
	"time"
)

// workerState tracks one emmcd instance's routing state: liveness from
// the health prober, and a consecutive-failure circuit breaker fed by
// shard outcomes. Both gates must be open for the worker to receive
// shards.
type workerState struct {
	name string
	cli  *Client

	mu sync.Mutex
	// healthy is the last health-probe verdict. Workers start unhealthy
	// until the first probe passes, so an unreachable fleet degrades to
	// local execution instead of burning the attempt budget on it.
	healthy bool
	// consecFails counts consecutive shard-level failures (submit errors,
	// lost polls, stalls); any success resets it.
	consecFails int
	// trippedUntil is the circuit breaker: while in the future, the worker
	// is out of rotation even if probes pass. A passing probe after expiry
	// closes the breaker (half-open → closed in one step, since a probe is
	// itself the trial request).
	trippedUntil time.Time
}

// available reports whether the worker may receive a shard now.
func (w *workerState) available(now time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy && !now.Before(w.trippedUntil)
}

// ok records a shard success, closing the failure streak.
func (w *workerState) ok() {
	w.mu.Lock()
	w.consecFails = 0
	w.mu.Unlock()
}

// fail records a shard failure; once the streak reaches threshold the
// breaker trips for cooldown. Returns true when this call tripped it.
func (w *workerState) fail(threshold int, cooldown time.Duration, now time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.consecFails++
	if w.consecFails >= threshold && now.After(w.trippedUntil) {
		w.trippedUntil = now.Add(cooldown)
		w.consecFails = 0
		return true
	}
	return false
}

// setHealthy records a probe verdict. A passing probe past the breaker
// window also closes the breaker.
func (w *workerState) setHealthy(up bool, now time.Time) {
	w.mu.Lock()
	w.healthy = up
	if up && !w.trippedUntil.IsZero() && now.After(w.trippedUntil) {
		w.trippedUntil = time.Time{}
		w.consecFails = 0
	}
	w.mu.Unlock()
}

// pool is the coordinator's routing table: round-robin over workers that
// are both probe-healthy and breaker-closed.
type pool struct {
	workers []*workerState
	mu      sync.Mutex
	next    int
}

func newPool(urls []string, timeout time.Duration) *pool {
	p := &pool{}
	for _, u := range urls {
		p.workers = append(p.workers, &workerState{name: u, cli: NewClient(u, timeout)})
	}
	return p
}

// pick returns the next available worker in round-robin order, or nil
// when none is — the caller's cue to degrade to local execution. The
// cursor advances on every pick, so consecutive attempts of a re-routed
// shard land on different workers whenever more than one is available.
func (p *pool) pick(now time.Time) *workerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	for range p.workers {
		w := p.workers[p.next%len(p.workers)]
		p.next++
		if w.available(now) {
			return w
		}
	}
	return nil
}

// healthyCount reports how many workers are currently available.
func (p *pool) healthyCount(now time.Time) int {
	n := 0
	for _, w := range p.workers {
		if w.available(now) {
			n++
		}
	}
	return n
}

// probeAll probes every worker once, concurrently, and records verdicts.
// It returns the number of failed probes.
func (p *pool) probeAll(ctx context.Context) int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	failed := 0
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			err := w.cli.Health(ctx)
			w.setHealthy(err == nil, time.Now())
			if err != nil {
				mu.Lock()
				failed++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return failed
}
