// Package coord implements the fault-tolerant distributed sweep fabric:
// one coordinator fans an ordinary cliutil.SweepSpec out — as serializable
// shards — to a fleet of emmcd workers over the existing POST /v1/sweeps +
// GET /v1/jobs/{id} API, and merges the shard results deterministically in
// plan order, so the sharded sweep is byte-identical to a single-process
// experiments.RunSweep.
//
// Robustness model: workers are health-checked (periodic /healthz probes;
// draining/503 workers leave rotation), every shard attempt runs under its
// own deadline and HTTP client timeouts, failures retry with capped
// exponential backoff plus jitter (honoring 429 Retry-After), a failed or
// timed-out shard re-routes to a different healthy worker under a bounded
// attempt budget, repeatedly failing workers are circuit-broken, and when
// no workers remain the coordinator degrades to in-process execution
// through the same SweepSpec.Run path the workers use — so partial failure
// costs wall clock, never results. Canceling the coordinator's context
// propagates: in-flight worker jobs are DELETEd.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"emmcio/internal/cliutil"
	"emmcio/internal/rng"
	"emmcio/internal/server"
	"emmcio/internal/telemetry"
)

// Config sizes the coordinator's fleet and its failure policy. The zero
// value gets sensible defaults from New; an empty Workers list means every
// shard runs locally (the degenerate but valid single-machine fabric).
type Config struct {
	// Workers lists emmcd base URLs ("http://host:8080").
	Workers []string
	// TracesPerShard bounds how many traces a per-trace sweep shard carries
	// (default 1, the finest re-routable grain).
	TracesPerShard int
	// MaxInflight bounds shards dispatched concurrently (default
	// 2×len(Workers), min 1): enough to keep every worker's job queue fed
	// without flooding a small fleet into constant 429s.
	MaxInflight int
	// MaxAttempts is the per-shard attempt budget: full submit→poll cycles
	// before the shard degrades to local execution or fails (default 3).
	MaxAttempts int
	// ShardTimeout is the per-attempt deadline covering submission,
	// backpressure waits, and polling (default 5m).
	ShardTimeout time.Duration
	// HTTPTimeout is the per-request client timeout (default 10s).
	HTTPTimeout time.Duration
	// PollInterval is the job-status polling period (default 200ms).
	PollInterval time.Duration
	// PollFailures is how many consecutive poll errors mean the worker is
	// gone and the shard re-routes (default 3).
	PollFailures int
	// HealthInterval is the background probe period (default 2s).
	HealthInterval time.Duration
	// BackoffBase/BackoffMax bound the capped exponential retry backoff
	// (defaults 100ms and 5s); full jitter is applied on top, and a 429's
	// Retry-After is honored as the floor.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerFailures consecutive shard failures trip a worker's circuit
	// breaker for BreakerCooldown (defaults 3 and 10s).
	BreakerFailures int
	BreakerCooldown time.Duration
	// DisableLocal forbids the degrade-to-local fallback: a shard that
	// exhausts its attempts (or finds no healthy worker) fails the sweep
	// instead of running in process. Off by default — availability first.
	DisableLocal bool
	// LocalWorkers is the in-process worker width for degraded shards
	// (0 = GOMAXPROCS).
	LocalWorkers int
	// JitterSeed seeds the deterministic backoff jitter stream (0 = 1).
	// Jitter affects timing only, never results.
	JitterSeed uint64
	// Telemetry receives the coordinator's coord_* counters (nil = a fresh
	// private registry; read it back via Telemetry()).
	Telemetry *telemetry.Registry
	// Logger receives retry/re-route/degrade lifecycle logs (nil = silent).
	Logger *slog.Logger
}

// Coordinator fans sharded sweeps out to a worker fleet. Create with New;
// each Run is independent and concurrent-safe.
type Coordinator struct {
	cfg  Config
	pool *pool
	tel  *telemetry.Registry
	log  *slog.Logger

	shardsPlanned   *telemetry.Counter
	shardsCompleted *telemetry.Counter
	attempts        *telemetry.Counter
	retries         *telemetry.Counter
	reroutes        *telemetry.Counter
	backpressure    *telemetry.Counter
	workerFailures  *telemetry.Counter
	breakerTrips    *telemetry.Counter
	localRuns       *telemetry.Counter
	remoteCancels   *telemetry.Counter
	probeFailures   *telemetry.Counter
	devicePushes    *telemetry.Counter
	workersHealthy  *telemetry.Gauge

	rngMu    sync.Mutex
	rngState uint64
}

// New builds a coordinator over the configured fleet.
func New(cfg Config) *Coordinator {
	if cfg.TracesPerShard <= 0 {
		cfg.TracesPerShard = 1
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2 * len(cfg.Workers)
		if cfg.MaxInflight < 1 {
			cfg.MaxInflight = 1
		}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 5 * time.Minute
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 10 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.PollFailures <= 0 {
		cfg.PollFailures = 3
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.BreakerFailures <= 0 {
		cfg.BreakerFailures = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	c := &Coordinator{
		cfg:      cfg,
		pool:     newPool(cfg.Workers, cfg.HTTPTimeout),
		tel:      cfg.Telemetry,
		log:      cfg.Logger,
		rngState: cfg.JitterSeed,
	}
	c.shardsPlanned = c.tel.Counter("coord_shards_planned_total")
	c.shardsCompleted = c.tel.Counter("coord_shards_completed_total")
	c.attempts = c.tel.Counter("coord_shard_attempts_total")
	c.retries = c.tel.Counter("coord_shard_retries_total")
	c.reroutes = c.tel.Counter("coord_shard_reroutes_total")
	c.backpressure = c.tel.Counter("coord_backpressure_429_total")
	c.workerFailures = c.tel.Counter("coord_worker_failures_total")
	c.breakerTrips = c.tel.Counter("coord_breaker_trips_total")
	c.localRuns = c.tel.Counter("coord_local_runs_total")
	c.remoteCancels = c.tel.Counter("coord_remote_cancels_total")
	c.probeFailures = c.tel.Counter("coord_health_probe_failures_total")
	c.devicePushes = c.tel.Counter("coord_device_pushes_total")
	c.workersHealthy = c.tel.Gauge("coord_workers_healthy")
	return c
}

// Telemetry returns the registry carrying the coordinator's coord_*
// counters (retries, re-routes, breaker trips, local fallbacks, …).
func (c *Coordinator) Telemetry() *telemetry.Registry { return c.tel }

// Run shards spec, executes the shards across the fleet, and merges the
// results in plan order. The returned []cliutil.SweepResult marshals to
// exactly the bytes a single-process SweepSpec.Run would produce; only
// wall clock depends on the fleet. Canceling ctx aborts the sweep and
// DELETEs in-flight worker jobs.
func (c *Coordinator) Run(ctx context.Context, spec cliutil.SweepSpec) ([]cliutil.SweepResult, error) {
	shards, err := cliutil.ShardSweep(spec, c.cfg.TracesPerShard)
	if err != nil {
		return nil, err
	}
	c.shardsPlanned.Add(int64(len(shards)))

	// A from_device sweep forks an archived snapshot the workers may not
	// hold. Materialize the sealed bytes once, up front — an unknown id or
	// missing local store fails the whole run here, before any shard is
	// dispatched — and lazily push them to each worker on its first shard.
	var push *devicePush
	if spec.FromDevice != "" {
		sealed, err := spec.DeviceSnapshot()
		if err != nil {
			return nil, fmt.Errorf("coord: %w", err)
		}
		push = &devicePush{id: spec.FromDevice, sealed: sealed, pushed: map[string]bool{}}
		c.log.Info("sweep forks archived device", "device", spec.FromDevice,
			"snapshot_bytes", len(sealed))
	}

	// One synchronous probe round before dispatch, so the first picks see
	// real health instead of the everyone-unhealthy boot state; then the
	// background prober keeps verdicts fresh for the sweep's duration.
	c.probeRound(ctx)
	proberDone := make(chan struct{})
	proberCtx, stopProber := context.WithCancel(ctx)
	go func() {
		defer close(proberDone)
		t := time.NewTicker(c.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-proberCtx.Done():
				return
			case <-t.C:
				c.probeRound(proberCtx)
			}
		}
	}()
	defer func() { stopProber(); <-proberDone }()

	c.log.Info("sweep sharded", "shards", len(shards), "workers", len(c.cfg.Workers),
		"healthy", c.pool.healthyCount(time.Now()))

	// Fan out with bounded in-flight shards. The first fatal error cancels
	// the rest (their in-flight worker jobs are DELETEd on the way down);
	// results land in shard-ID slots so the merge is plan-ordered no
	// matter the completion order.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	results := make([][]cliutil.SweepResult, len(shards))
	sem := make(chan struct{}, c.cfg.MaxInflight)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-runCtx.Done():
				return
			}
			res, err := c.runShard(runCtx, shards[i], push)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				cancelRun()
				return
			}
			results[i] = res
			c.shardsCompleted.Inc()
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return cliutil.MergeShardResults(shards, results)
}

// probeRound probes the whole fleet and refreshes the health gauge.
func (c *Coordinator) probeRound(ctx context.Context) {
	if len(c.pool.workers) == 0 {
		return
	}
	failed := c.pool.probeAll(ctx)
	if failed > 0 {
		c.probeFailures.Add(int64(failed))
	}
	c.workersHealthy.Set(int64(c.pool.healthyCount(time.Now())))
}

// devicePush is a run's snapshot pre-push state for a from_device sweep:
// the sealed bytes fetched once at Run, and which workers already hold
// them. Shards share it, so a fleet-wide sweep uploads the snapshot to
// each worker exactly once no matter how many shards land there.
type devicePush struct {
	id     string
	sealed []byte

	mu     sync.Mutex
	pushed map[string]bool
}

// ensureDevice makes sure w's store holds the forked snapshot before a
// shard referencing it is submitted. The worker derives the id from the
// uploaded content with the same hash the local store used, so a mismatch
// means the bytes were mangled in transit — never retryable.
func (c *Coordinator) ensureDevice(ctx context.Context, w *workerState, push *devicePush) error {
	// The mutex spans the upload, not just the map: concurrent shards
	// racing to the same fresh worker would otherwise both see it
	// unpushed and both upload the snapshot. Serializing pushes across
	// workers too is fine — each worker is pushed at most once, so total
	// time under the lock is bounded by fleet size, not shard count.
	push.mu.Lock()
	defer push.mu.Unlock()
	if push.pushed[w.name] {
		return nil
	}
	id, err := w.cli.ImportDevice(ctx, push.sealed, "")
	if err != nil {
		return fmt.Errorf("pushing device %s to %s: %w", push.id, w.name, err)
	}
	if id != push.id {
		return fmt.Errorf("worker %s archived pushed snapshot as %s, want %s", w.name, id, push.id)
	}
	push.pushed[w.name] = true
	c.devicePushes.Inc()
	c.log.Info("device pushed", "device", push.id, "worker", w.name,
		"bytes", len(push.sealed))
	return nil
}

// runShard executes one shard to completion: remote attempts with
// retry/backoff/re-route under the attempt budget, then — unless disabled
// — local degradation through the identical SweepSpec.Run path.
func (c *Coordinator) runShard(ctx context.Context, sh cliutil.SweepShard, push *devicePush) ([]cliutil.SweepResult, error) {
	var lastErr error
	var lastWorker *workerState
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w := c.pool.pick(time.Now())
		if w == nil {
			// Nobody to route to; stop burning attempts and degrade now.
			break
		}
		if attempt > 1 {
			c.retries.Inc()
			if w != lastWorker {
				c.reroutes.Inc()
				c.log.Warn("re-routing shard", "shard", sh.ID, "sweep", sh.Sweep,
					"attempt", attempt, "worker", w.name)
			}
		}
		lastWorker = w
		c.attempts.Inc()
		res, retryable, err := c.attempt(ctx, w, sh, push)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !retryable {
			return nil, fmt.Errorf("coord: shard %d (%s) failed on %s: %w", sh.ID, sh.Sweep, w.name, err)
		}
		lastErr = err
		c.markFailure(w)
		c.log.Warn("shard attempt failed", "shard", sh.ID, "sweep", sh.Sweep,
			"attempt", attempt, "worker", w.name, "error", err)
		if attempt < c.cfg.MaxAttempts {
			if !sleepCtx(ctx, c.backoff(attempt, 0)) {
				return nil, ctx.Err()
			}
		}
	}
	if c.cfg.DisableLocal {
		if lastErr != nil {
			return nil, fmt.Errorf("coord: shard %d (%s): attempt budget exhausted and local execution disabled: %w",
				sh.ID, sh.Sweep, lastErr)
		}
		return nil, fmt.Errorf("coord: shard %d (%s): no healthy workers and local execution disabled", sh.ID, sh.Sweep)
	}
	// Degrade to local: the shard's spec runs in process through the same
	// SweepSpec.Run path the workers' job bodies use, so the result is
	// identical to a remote success — availability costs wall clock only.
	c.localRuns.Inc()
	c.log.Warn("degrading shard to local execution", "shard", sh.ID, "sweep", sh.Sweep,
		"last_error", errString(lastErr))
	spec := sh.Spec
	return spec.Run(ctx, c.cfg.LocalWorkers, nil, nil)
}

// attempt runs one submit→poll cycle of sh on w under the shard deadline.
// retryable classifies the failure: true means a different worker (or a
// later try) could succeed; false means the shard itself is defective
// (spec rejection, runtime failure — deterministic either way).
func (c *Coordinator) attempt(ctx context.Context, w *workerState, sh cliutil.SweepShard, push *devicePush) (res []cliutil.SweepResult, retryable bool, err error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()

	if push != nil {
		if err := c.ensureDevice(actx, w, push); err != nil {
			if ctx.Err() != nil {
				return nil, false, ctx.Err()
			}
			var se *StatusError
			if errors.As(err, &se) && !se.Retryable() {
				return nil, false, err
			}
			// A worker without a device store (503 unavailable), a full
			// store, or a network failure: another worker may do better,
			// and local degradation always can (the spec carries its own
			// snapshot source).
			return nil, true, err
		}
	}

	id, err := c.submit(actx, w, sh)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		var se *StatusError
		if errors.As(err, &se) && !se.Retryable() {
			return nil, false, err
		}
		// Connection errors, 5xx, saturation, attempt deadline: the worker
		// (or its queue) is the problem — try another.
		return nil, true, err
	}

	pollFails := 0
	for {
		if !sleepCtx(actx, c.cfg.PollInterval) {
			// Shard deadline or cancellation with a job in flight: tell the
			// worker to stop before we walk away.
			c.cancelRemote(w, id)
			if ctx.Err() != nil {
				return nil, false, ctx.Err()
			}
			return nil, true, fmt.Errorf("shard deadline %s exceeded polling job %s", c.cfg.ShardTimeout, id)
		}
		st, err := w.cli.JobStatus(actx, id)
		if err != nil {
			pollFails++
			if pollFails >= c.cfg.PollFailures {
				// The worker vanished mid-job (crash, partition). Its job —
				// if the process still exists — is canceled best-effort; the
				// shard re-routes.
				c.cancelRemote(w, id)
				return nil, true, fmt.Errorf("lost contact polling job %s (%d consecutive errors): %w", id, pollFails, err)
			}
			continue
		}
		pollFails = 0
		switch st.State {
		case server.JobDone:
			var out []cliutil.SweepResult
			if err := json.Unmarshal(st.Result, &out); err != nil {
				return nil, true, fmt.Errorf("decoding job %s result: %w", id, err)
			}
			w.ok()
			return out, false, nil
		case server.JobFailed:
			if st.ErrorKind == server.ErrKindDeadline {
				// The worker's own job deadline expired — a capacity
				// symptom, not a property of the shard.
				return nil, true, fmt.Errorf("job %s hit the worker deadline: %s", id, st.Error)
			}
			// Runtime failures are deterministic: the same spec fails the
			// same way everywhere, so retrying would only repeat it.
			return nil, false, fmt.Errorf("job %s failed (%s): %s", id, st.ErrorKind, st.Error)
		case server.JobCanceled:
			// Worker-side cancellation (drain, operator DELETE): the shard
			// is fine, run it elsewhere.
			return nil, true, fmt.Errorf("job %s canceled on the worker: %s", id, st.Error)
		}
	}
}

// submit POSTs the shard, absorbing 429 backpressure with capped
// exponential backoff that honors Retry-After as the floor. A worker that
// stays saturated past submit429Budget rejections hands the shard back
// for re-routing rather than being hammered further.
const submit429Budget = 3

func (c *Coordinator) submit(actx context.Context, w *workerState, sh cliutil.SweepShard) (string, error) {
	var rejected int
	for try := 0; ; try++ {
		id, err := w.cli.SubmitSweep(actx, sh.Spec)
		if err == nil {
			return id, nil
		}
		var be *BackpressureError
		if !errors.As(err, &be) {
			return "", err
		}
		c.backpressure.Inc()
		if rejected++; rejected >= submit429Budget {
			return "", fmt.Errorf("worker saturated (%d consecutive 429s, queue %d/%d)",
				rejected, be.Queued, be.QueueCapacity)
		}
		if !sleepCtx(actx, c.backoff(try+1, be.After)) {
			return "", fmt.Errorf("attempt deadline during backpressure backoff: %w", actx.Err())
		}
	}
}

// cancelRemote best-effort DELETEs a job we are abandoning, under its own
// short context — the caller's may already be dead, and a dead context
// must not stop cancellation from propagating to the fleet.
func (c *Coordinator) cancelRemote(w *workerState, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HTTPTimeout)
	defer cancel()
	if err := w.cli.CancelJob(ctx, id); err != nil {
		c.log.Warn("remote cancel failed", "worker", w.name, "job", id, "error", err)
		return
	}
	c.remoteCancels.Inc()
}

// markFailure feeds a shard-level failure into the worker's breaker.
func (c *Coordinator) markFailure(w *workerState) {
	c.workerFailures.Inc()
	if w.fail(c.cfg.BreakerFailures, c.cfg.BreakerCooldown, time.Now()) {
		c.breakerTrips.Inc()
		c.log.Warn("circuit breaker tripped", "worker", w.name, "cooldown", c.cfg.BreakerCooldown)
	}
}

// backoff computes the capped exponential delay for the given attempt
// (1-based) with full jitter, floored at the server's Retry-After hint.
// The jitter stream is seeded (Config.JitterSeed), so tests are
// reproducible; jitter shifts timing only, never results.
func (c *Coordinator) backoff(attempt int, floor time.Duration) time.Duration {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	// Full jitter in [d/2, d): desynchronizes shard retries without ever
	// collapsing the delay to zero.
	c.rngMu.Lock()
	r := rng.SplitMix64(&c.rngState)
	c.rngMu.Unlock()
	d = d/2 + time.Duration(r%uint64(d/2+1))
	if d < floor {
		d = floor
	}
	return d
}

// sleepCtx sleeps d or until ctx is done; false means ctx won.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// discardHandler is a no-op slog.Handler; coord stays silent unless the
// caller wires a logger.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
