package coord

import (
	"testing"
	"time"
)

func TestBreakerTripsAndRecovers(t *testing.T) {
	w := &workerState{name: "w"}
	now := time.Now()
	w.setHealthy(true, now)

	if !w.available(now) {
		t.Fatal("healthy worker unavailable")
	}
	if w.fail(3, time.Minute, now) {
		t.Error("breaker tripped after 1 failure, threshold is 3")
	}
	if w.fail(3, time.Minute, now) {
		t.Error("breaker tripped after 2 failures, threshold is 3")
	}
	if !w.fail(3, time.Minute, now) {
		t.Error("breaker did not trip at the threshold")
	}
	if w.available(now) {
		t.Error("tripped worker still available")
	}

	// A passing probe during the cooldown must NOT close the breaker...
	w.setHealthy(true, now.Add(time.Second))
	if w.available(now.Add(time.Second)) {
		t.Error("probe inside the cooldown closed the breaker")
	}
	// ...but one after expiry does (the probe is the half-open trial).
	after := now.Add(2 * time.Minute)
	w.setHealthy(true, after)
	if !w.available(after) {
		t.Error("passing probe after cooldown did not close the breaker")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	w := &workerState{name: "w"}
	now := time.Now()
	w.setHealthy(true, now)
	w.fail(3, time.Minute, now)
	w.fail(3, time.Minute, now)
	w.ok() // a success between failures breaks the streak
	if w.fail(3, time.Minute, now) {
		t.Error("breaker tripped across a success, streak should have reset")
	}
}

func TestPoolRoundRobinSkipsUnavailable(t *testing.T) {
	p := newPool([]string{"a", "b", "c"}, time.Second)
	now := time.Now()
	// Nobody has passed a probe yet: an unprobed fleet yields nothing.
	if w := p.pick(now); w != nil {
		t.Fatalf("pick before any probe = %q, want nil", w.name)
	}
	for _, w := range p.workers {
		w.setHealthy(true, now)
	}
	p.workers[1].setHealthy(false, now) // b is down

	got := []string{p.pick(now).name, p.pick(now).name, p.pick(now).name}
	want := []string{"a", "c", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin picks = %v, want %v", got, want)
		}
	}
	if n := p.healthyCount(now); n != 2 {
		t.Errorf("healthyCount = %d, want 2", n)
	}
}
