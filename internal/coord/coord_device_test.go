package coord

import (
	"context"
	"encoding/json"
	"testing"

	"emmcio/internal/cliutil"
	"emmcio/internal/core"
	"emmcio/internal/devstore"
	"emmcio/internal/faults"
	"emmcio/internal/paper"
	"emmcio/internal/server"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
)

// agedStore builds a local device store holding one worn snapshot and
// returns it with the archived device id.
func agedStore(t *testing.T) (*devstore.Store, string) {
	t.Helper()
	opt := core.CaseStudyOptions()
	opt.Faults = &faults.Config{Seed: 11, Rate: 1}
	dev, err := core.NewDevice(core.Scheme4PS, opt)
	if err != nil {
		t.Fatal(err)
	}
	var arrival int64
	for i := 0; i < 48; i++ {
		res, err := dev.Submit(trace.Request{Arrival: arrival, LBA: uint64(i * 64), Size: 16 << 10, Op: trace.Write})
		if err != nil {
			t.Fatal(err)
		}
		arrival = res.Finish
	}
	sealed, _, err := storage.Seal(dev)
	if err != nil {
		t.Fatal(err)
	}
	store, err := devstore.Open(t.TempDir(), devstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.Put(sealed, devstore.Meta{Label: "aged", Scheme: "4PS", Origin: "aged"})
	if err != nil {
		t.Fatal(err)
	}
	return store, m.ID
}

// deviceWorker starts a worker with its own (empty) device store.
func deviceWorker(t *testing.T) (*httptestURL, *devstore.Store) {
	t.Helper()
	store, err := devstore.Open(t.TempDir(), devstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := newWorker(t, server.Config{DeviceStore: store})
	return &httptestURL{ts.URL}, store
}

// httptestURL keeps deviceWorker's signature readable.
type httptestURL struct{ URL string }

// TestFromDeviceSweepPushesSnapshots: a from_device sweep across a fleet
// whose workers have never seen the device must pre-push the sealed
// snapshot to each worker it routes to, and the merged result must equal
// the single-process run of the same forked spec.
func TestFromDeviceSweepPushesSnapshots(t *testing.T) {
	local, id := agedStore(t)
	spec := cliutil.SweepSpec{
		Sweeps:     []string{"casestudy"},
		Traces:     []string{paper.Idle, paper.CallIn},
		FromDevice: id,
	}
	spec.SetDeviceSource(local)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	want := localBaseline(t, spec)

	wa, sa := deviceWorker(t)
	wb, sb := deviceWorker(t)
	cfg := fastConfig([]string{wa.URL, wb.URL})
	cfg.DisableLocal = true // success must come through the fleet
	c := New(cfg)
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("forked fleet sweep diverged from single-process run:\n got %s\nwant %s", got, want)
	}

	st := counters(c)
	pushes := st["coord_device_pushes_total"]
	if pushes < 1 || pushes > 2 {
		t.Errorf("device pushes = %d, want 1..2 (once per worker that got a shard)", pushes)
	}
	holders := 0
	for _, s := range []*devstore.Store{sa, sb} {
		if _, err := s.Get(id); err == nil {
			holders++
		}
	}
	if int64(holders) != pushes {
		t.Errorf("%d workers hold the snapshot but %d pushes were counted", holders, pushes)
	}
}

// TestFromDeviceDegradesWithoutWorkerStore: a fleet whose only worker has
// no device store cannot accept the push (503 unavailable); the shards
// must degrade to local execution — where the spec's own snapshot source
// serves the fork — and still produce the exact baseline bytes.
func TestFromDeviceDegradesWithoutWorkerStore(t *testing.T) {
	local, id := agedStore(t)
	spec := cliutil.SweepSpec{
		Sweeps:     []string{"casestudy"},
		Traces:     []string{paper.Idle},
		FromDevice: id,
	}
	spec.SetDeviceSource(local)
	want := localBaseline(t, spec)

	storeless := newWorker(t, server.Config{}) // no DeviceStore
	cfg := fastConfig([]string{storeless.URL})
	cfg.MaxAttempts = 2
	c := New(cfg)
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("degraded forked sweep diverged:\n got %s\nwant %s", got, want)
	}
	st := counters(c)
	if st["coord_local_runs_total"] != 1 {
		t.Errorf("local runs = %d, want 1 (the storeless fleet cannot serve forks)", st["coord_local_runs_total"])
	}
}

// TestFromDeviceUnknownFailsFast: a from_device id the coordinator's own
// store does not hold must fail the run before any shard is dispatched.
func TestFromDeviceUnknownFailsFast(t *testing.T) {
	local, _ := agedStore(t)
	spec := cliutil.SweepSpec{
		Sweeps:     []string{"casestudy"},
		Traces:     []string{paper.Idle},
		FromDevice: "d000000000000",
	}
	spec.SetDeviceSource(local)

	c := New(fastConfig([]string{newWorker(t, server.Config{}).URL}))
	if _, err := c.Run(context.Background(), spec); err == nil {
		t.Fatal("run with unknown from_device succeeded, want fail-fast error")
	} else if st := counters(c); st["coord_shard_attempts_total"] != 0 {
		t.Errorf("unknown device still burned %d shard attempts", st["coord_shard_attempts_total"])
	}
}
