package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Demo", "App", "Value")
	tb.AddRow("Twitter", "13.5")
	tb.AddRow("Email", "20.0")
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "App", "Twitter", "20.0", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows() = %d", tb.Rows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("Demo", "a", "b")
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\n1,2\n" {
		t.Fatalf("csv output %q", buf.String())
	}
}

func TestAddRowPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	NewTable("x", "a", "b").AddRow("only one")
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Error("F")
	}
	if I(42) != "42" {
		t.Error("I")
	}
	if Pct(0.525, 1) != "52.5" {
		t.Error("Pct")
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Errorf("Bar(5,10,10) = %q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != "##########" {
		t.Error("Bar should clamp at width")
	}
	if Bar(1, 0, 10) != "" {
		t.Error("Bar with zero max should be empty")
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := NewTable("Demo", "App", "Val")
	tb.AddRow("Twitter", "a|b")
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### Demo", "| App | Val |", "|---|---|", `a\|b`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
