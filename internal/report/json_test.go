package report

import (
	"encoding/json"
	"testing"
)

// TestTableJSONRoundTrip pins the wire property the sweep fabric leans on:
// cells are pre-formatted strings, so marshal → unmarshal → marshal is
// byte-identical and a table can hop between processes losslessly.
func TestTableJSONRoundTrip(t *testing.T) {
	tbl := NewTable("Fig. X: demo", "App", "ms")
	tbl.AddRow("CallIn", "3.41")
	tbl.AddRow("Idle", "0.10")

	first, err := json.Marshal(tbl)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Table
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(first) != string(second) {
		t.Errorf("round trip changed bytes:\n first %s\nsecond %s", first, second)
	}
	if back.Rows() != 2 {
		t.Errorf("decoded table has %d rows, want 2", back.Rows())
	}
}

func TestTableUnmarshalRejectsRaggedRows(t *testing.T) {
	raw := `{"title":"t","columns":["a","b"],"rows":[["only-one"]]}`
	var tbl Table
	if err := json.Unmarshal([]byte(raw), &tbl); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestAppendRowsGuardsShape(t *testing.T) {
	a := NewTable("t", "x", "y")
	a.AddRow("1", "2")
	b := NewTable("t", "x", "y")
	b.AddRow("3", "4")
	if err := a.AppendRows(b); err != nil {
		t.Fatalf("AppendRows: %v", err)
	}
	if a.Rows() != 2 {
		t.Errorf("rows = %d, want 2", a.Rows())
	}

	if err := a.AppendRows(NewTable("other", "x", "y")); err == nil {
		t.Error("title mismatch accepted")
	}
	if err := a.AppendRows(NewTable("t", "x")); err == nil {
		t.Error("column-count mismatch accepted")
	}
	if err := a.AppendRows(NewTable("t", "x", "z")); err == nil {
		t.Error("column-name mismatch accepted")
	}
}
