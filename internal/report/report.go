// Package report renders the reproduction's tables and figure data as
// fixed-width text (for the terminal) and CSV (for plotting), so every
// table and figure of the paper can be regenerated as a readable artifact.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-aligned text/CSV table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; it panics when the cell count does not match the
// header, which is always a programming error in a report generator.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.rows = append(t.rows, cells)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteText renders the aligned text form.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MarshalJSON renders the table as {title, columns, rows}, so services can
// ship rendered tables over the wire without exposing the row storage.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Columns, rows})
}

// UnmarshalJSON restores a table from its MarshalJSON wire form, so a
// rendered table can round-trip through a job result: the sweep
// coordinator decodes each shard's tables, merges them row-wise, and the
// re-marshaled merge is byte-identical to a single-process render (every
// cell is already a formatted string; nothing is re-computed).
func (t *Table) UnmarshalJSON(data []byte) error {
	var wire struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	for i, row := range wire.Rows {
		if len(row) != len(wire.Columns) {
			return fmt.Errorf("report: table %q row %d has %d cells, header has %d",
				wire.Title, i, len(row), len(wire.Columns))
		}
	}
	t.Title = wire.Title
	t.Columns = wire.Columns
	t.rows = wire.Rows
	return nil
}

// AppendRows appends o's data rows to t — the merge step for sharded
// sweeps, where each shard renders the same table over a disjoint row
// subset. The titles and headers must agree exactly; a mismatch means the
// shards did not come from the same sweep.
func (t *Table) AppendRows(o *Table) error {
	if o.Title != t.Title {
		return fmt.Errorf("report: cannot merge table %q into %q", o.Title, t.Title)
	}
	if len(o.Columns) != len(t.Columns) {
		return fmt.Errorf("report: table %q merge: %d columns vs %d", t.Title, len(o.Columns), len(t.Columns))
	}
	for i := range t.Columns {
		if o.Columns[i] != t.Columns[i] {
			return fmt.Errorf("report: table %q merge: column %d is %q vs %q", t.Title, i, o.Columns[i], t.Columns[i])
		}
	}
	t.rows = append(t.rows, o.rows...)
	return nil
}

// WriteCSV renders the CSV form (header row first, no title).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// I formats an integer.
func I[T ~int | ~int64](v T) string { return strconv.FormatInt(int64(v), 10) }

// Pct formats a fraction as a percentage with the given decimals.
func Pct(fraction float64, decimals int) string {
	return strconv.FormatFloat(fraction*100, 'f', decimals, 64)
}

// Bar renders a crude horizontal bar for terminal "figures": value scaled
// against max into width cells.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// WriteMarkdown renders the table as GitHub-flavored markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.rows {
		esc := make([]string, len(row))
		for i, c := range row {
			esc[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(esc, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
