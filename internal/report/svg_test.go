package report

import (
	"bytes"
	"strings"
	"testing"
)

func barFigure() *Figure {
	return &Figure{
		Title:  "Fig. 8: MRT",
		YLabel: "ms",
		XTicks: []string{"Idle", "Twitter"},
		Series: []Series{
			{Name: "4PS", Values: []float64{3.7, 3.7}},
			{Name: "HPS", Values: []float64{2.7, 2.8}},
		},
	}
}

func TestWriteBarSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := barFigure().WriteBarSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "Fig. 8: MRT", "Twitter", "4PS", "rect"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two series x two groups = 4 data rects (plus background).
	if n := strings.Count(out, "<title>"); n != 4 {
		t.Errorf("%d bars, want 4", n)
	}
}

func TestWriteBarSVGLogScale(t *testing.T) {
	f := barFigure()
	f.LogY = true
	f.Series[0].Values = []float64{15000, 3.7}
	var buf bytes.Buffer
	if err := f.WriteBarSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("no SVG output")
	}
}

func TestWriteLineSVG(t *testing.T) {
	f := &Figure{
		Title:  "Fig. 3",
		XTicks: []string{"4KB", "8KB", "16KB"},
		Series: []Series{
			{Name: "Read", Values: []float64{10, 20, 0}}, // 0 = missing point
			{Name: "Write", Values: []float64{2, 5, 9}},
		},
	}
	var buf bytes.Buffer
	if err := f.WriteLineSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "polyline") {
		t.Fatal("no polyline")
	}
	// The read series must have 2 circles, the write series 3.
	if n := strings.Count(out, "<circle"); n != 5 {
		t.Errorf("%d points, want 5 (missing point skipped)", n)
	}
}

func TestWriteStackedSVG(t *testing.T) {
	f := &Figure{
		Title:  "Fig. 4",
		XTicks: []string{"Idle"},
		Series: []Series{
			{Name: "<=4KB", Values: []float64{0.5}},
			{Name: ">4KB", Values: []float64{0.5}},
		},
	}
	var buf bytes.Buffer
	if err := f.WriteStackedSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "50.0%") {
		t.Fatal("stacked percentages missing")
	}
}

func TestFigureValidation(t *testing.T) {
	var buf bytes.Buffer
	bad := &Figure{Title: "x", XTicks: []string{"a"}}
	if err := bad.WriteBarSVG(&buf); err == nil {
		t.Fatal("no-series figure accepted")
	}
	ragged := &Figure{
		Title:  "x",
		XTicks: []string{"a", "b"},
		Series: []Series{{Name: "s", Values: []float64{1}}},
	}
	if err := ragged.WriteBarSVG(&buf); err == nil {
		t.Fatal("ragged figure accepted")
	}
}

func TestSVGEscaping(t *testing.T) {
	f := barFigure()
	f.Title = `<script>"a"&b</script>`
	var buf bytes.Buffer
	if err := f.WriteBarSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>") {
		t.Fatal("title not escaped")
	}
}
