package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// The SVG renderers produce self-contained figures for the paper's chart
// types: grouped bars (Figs. 8/9), line series over a log-x size axis
// (Fig. 3), and stacked distribution bars (Figs. 4–7). Everything is plain
// stdlib string building; the output opens in any browser.

// Series is one named line or bar group.
type Series struct {
	Name   string
	Values []float64
}

// Figure is a renderable chart.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	// XTicks labels the category positions (bars) or x samples (lines).
	XTicks []string
	Series []Series
	// LogY plots the y axis in log10 (Fig. 8b's scale).
	LogY bool
}

const (
	figW, figH = 880, 420
	marginL    = 70
	marginR    = 20
	marginT    = 40
	marginB    = 90
	plotW      = figW - marginL - marginR
	plotH      = figH - marginT - marginB
)

// palette holds fill colors for up to six series.
var palette = []string{"#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c"}

func (f *Figure) validate() error {
	if len(f.Series) == 0 {
		return fmt.Errorf("report: figure %q has no series", f.Title)
	}
	n := len(f.Series[0].Values)
	for _, s := range f.Series {
		if len(s.Values) != n {
			return fmt.Errorf("report: figure %q has ragged series", f.Title)
		}
	}
	if len(f.XTicks) != n {
		return fmt.Errorf("report: figure %q has %d ticks for %d values", f.Title, len(f.XTicks), n)
	}
	return nil
}

func (f *Figure) yRange() (lo, hi float64) {
	hi = math.Inf(-1)
	lo = 0
	if f.LogY {
		lo = math.Inf(1)
	}
	for _, s := range f.Series {
		for _, v := range s.Values {
			if v > hi {
				hi = v
			}
			if f.LogY && v > 0 && v < lo {
				lo = v
			}
		}
	}
	if hi <= 0 {
		hi = 1
	}
	if f.LogY {
		if math.IsInf(lo, 1) {
			lo = 0.1
		}
		lo = math.Pow(10, math.Floor(math.Log10(lo)))
		hi = math.Pow(10, math.Ceil(math.Log10(hi)))
	} else {
		hi *= 1.08
	}
	return lo, hi
}

func (f *Figure) yPos(v, lo, hi float64) float64 {
	var frac float64
	if f.LogY {
		if v <= 0 {
			v = lo
		}
		frac = (math.Log10(v) - math.Log10(lo)) / (math.Log10(hi) - math.Log10(lo))
	} else {
		frac = (v - lo) / (hi - lo)
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return float64(marginT) + float64(plotH)*(1-frac)
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func (f *Figure) header(b *strings.Builder) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, figW, figH)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`, figW, figH)
	fmt.Fprintf(b, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`, marginL, svgEscape(f.Title))
	// Axes.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	if f.YLabel != "" {
		fmt.Fprintf(b, `<text x="14" y="%d" font-size="12" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`,
			marginT+plotH/2, marginT+plotH/2, svgEscape(f.YLabel))
	}
	if f.XLabel != "" {
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`,
			marginL+plotW/2, figH-8, svgEscape(f.XLabel))
	}
}

func (f *Figure) yGrid(b *strings.Builder, lo, hi float64) {
	ticks := 5
	for i := 0; i <= ticks; i++ {
		var v float64
		if f.LogY {
			v = lo * math.Pow(hi/lo, float64(i)/float64(ticks))
		} else {
			v = lo + (hi-lo)*float64(i)/float64(ticks)
		}
		y := f.yPos(v, lo, hi)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`,
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`,
			marginL-6, y+3, fmtTick(v))
	}
}

func fmtTick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func (f *Figure) legend(b *strings.Builder) {
	x := marginL + 10
	for i, s := range f.Series {
		color := palette[i%len(palette)]
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`, x, marginT+4, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11">%s</text>`, x+16, marginT+14, svgEscape(s.Name))
		x += 22 + 8*len(s.Name)
	}
}

// WriteBarSVG renders grouped bars (Figs. 8 and 9).
func (f *Figure) WriteBarSVG(w io.Writer) error {
	if err := f.validate(); err != nil {
		return err
	}
	lo, hi := f.yRange()
	var b strings.Builder
	f.header(&b)
	f.yGrid(&b, lo, hi)
	f.legend(&b)

	n := len(f.XTicks)
	groupW := float64(plotW) / float64(n)
	barW := groupW * 0.8 / float64(len(f.Series))
	for gi := range f.XTicks {
		gx := float64(marginL) + groupW*float64(gi) + groupW*0.1
		for si, s := range f.Series {
			v := s.Values[gi]
			y := f.yPos(v, lo, hi)
			h := float64(marginT+plotH) - y
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %g</title></rect>`,
				gx+barW*float64(si), y, barW, h, palette[si%len(palette)],
				svgEscape(s.Name), svgEscape(f.XTicks[gi]), v)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="end" transform="rotate(-45 %.1f %d)">%s</text>`,
			gx+groupW*0.4, marginT+plotH+14, gx+groupW*0.4, marginT+plotH+14, svgEscape(f.XTicks[gi]))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteLineSVG renders line series over the tick positions (Fig. 3).
// Series values <= 0 are treated as missing points (e.g. the read curve
// past 256 KB).
func (f *Figure) WriteLineSVG(w io.Writer) error {
	if err := f.validate(); err != nil {
		return err
	}
	lo, hi := f.yRange()
	var b strings.Builder
	f.header(&b)
	f.yGrid(&b, lo, hi)
	f.legend(&b)

	n := len(f.XTicks)
	step := float64(plotW) / float64(n-1+1)
	for si, s := range f.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i, v := range s.Values {
			if v <= 0 {
				continue
			}
			x := float64(marginL) + step*float64(i) + step/2
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, f.yPos(v, lo, hi)))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`,
			color, strings.Join(pts, " "))
		for _, p := range pts {
			xy := strings.Split(p, ",")
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`, xy[0], xy[1], color)
		}
	}
	for i, tick := range f.XTicks {
		x := float64(marginL) + step*float64(i) + step/2
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`,
			x, marginT+plotH+14, svgEscape(tick))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteStackedSVG renders 100%-stacked distribution bars (Figs. 4–7):
// every column's series values are normalized to sum to one.
func (f *Figure) WriteStackedSVG(w io.Writer) error {
	if err := f.validate(); err != nil {
		return err
	}
	var b strings.Builder
	f.header(&b)
	f.legend(&b)

	n := len(f.XTicks)
	groupW := float64(plotW) / float64(n)
	barW := groupW * 0.7
	for gi := range f.XTicks {
		var total float64
		for _, s := range f.Series {
			total += s.Values[gi]
		}
		if total <= 0 {
			total = 1
		}
		gx := float64(marginL) + groupW*float64(gi) + groupW*0.15
		yTop := float64(marginT + plotH)
		for si, s := range f.Series {
			h := s.Values[gi] / total * float64(plotH)
			yTop -= h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.1f%%</title></rect>`,
				gx, yTop, barW, h, palette[si%len(palette)],
				svgEscape(f.XTicks[gi]), svgEscape(s.Name), s.Values[gi]/total*100)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="end" transform="rotate(-45 %.1f %d)">%s</text>`,
			gx+barW/2, marginT+plotH+14, gx+barW/2, marginT+plotH+14, svgEscape(f.XTicks[gi]))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
