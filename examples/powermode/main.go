// powermode explores Characteristic 4: an eMMC device drops into a
// low-power state when requests stop arriving, and the wake-up penalty
// inflates the response times of low-arrival-rate applications. The example
// replays a low-rate and a high-rate application with the power model on
// and off.
package main

import (
	"fmt"
	"log"

	"emmcio"
)

func main() {
	apps := []string{
		emmcio.Idle,      // 0.24 req/s — sleeps constantly
		emmcio.YouTube,   // 0.44 req/s
		emmcio.Messaging, // 9.68 req/s — rarely sleeps
		emmcio.Twitter,   // 16.13 req/s
	}

	fmt.Printf("%-12s %16s %16s %12s %12s\n",
		"Application", "MRT no-power(ms)", "MRT power(ms)", "light wakes", "deep wakes")
	for _, app := range apps {
		var mrt [2]float64
		var light, deep int64
		for i, power := range []bool{false, true} {
			tr := emmcio.GenerateTrace(app, emmcio.DefaultSeed)
			opt := emmcio.CaseStudyOptions()
			opt.PowerSaving = power
			m, err := emmcio.Replay(emmcio.Scheme4PS, opt, tr)
			if err != nil {
				log.Fatal(err)
			}
			mrt[i] = m.MeanResponseNs / 1e6
			if power {
				light, deep = m.LightWakes, m.DeepWakes
			}
		}
		fmt.Printf("%-12s %16.2f %16.2f %12d %12d\n", app, mrt[0], mrt[1], light, deep)
	}
	fmt.Println("\nLow-rate applications pay a wake-up on most requests, which is")
	fmt.Println("why Idle/CallIn/CallOut/YouTube show the highest mean service")
	fmt.Println("times in Table IV despite their tiny load (Characteristic 4).")
}
