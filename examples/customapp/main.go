// customapp shows how to model an application the paper never traced:
// define a workload profile with your own calibration targets, generate its
// trace, characterize it like §III, and judge it on the §V device schemes.
// Here: a podcast app — long sessions, bursty 4 KB bookkeeping writes over
// a background of large sequential audio prefetches.
package main

import (
	"fmt"
	"log"

	"emmcio"
)

func main() {
	podcast := &emmcio.Profile{
		Name:        "Podcast",
		DurationSec: 2400, // a 40-minute commute
		Requests:    4200,
		WriteFrac:   0.72, // bookkeeping + episode caching
		MeanReadKB:  48,   // audio prefetch reads
		MeanWriteKB: 18,
		MaxKB:       2048,
		Spatial:     0.24,
		Temporal:    0.35,
		P4:          0.53, // inside the paper's Characteristic-2 band
		BurstFrac:   0.75,
		BurstMeanMs: 6,
	}
	if err := podcast.Validate(); err != nil {
		log.Fatal(err)
	}
	tr := podcast.Generate(emmcio.DefaultSeed)

	s := emmcio.SizeStatsOf(tr)
	fmt.Printf("%s: %d requests, %.1f KB avg (R %.1f / W %.1f), %.1f%% writes\n",
		tr.Name, s.Requests, s.AveKB, s.AveReadKB, s.AveWriteKB, s.WriteReqPct)
	d := emmcio.DistributionsOf(tr)
	fmt.Printf("single-page share %.1f%% — a typical smartphone app per Characteristic 2\n\n",
		d.Single4KFraction()*100)

	fmt.Printf("%-8s %10s %12s\n", "Scheme", "MRT (ms)", "SpaceUtil")
	for _, scheme := range []emmcio.Scheme{emmcio.Scheme4PS, emmcio.Scheme8PS, emmcio.SchemeHPS} {
		run := tr.Clone()
		run.ClearTimestamps()
		m, err := emmcio.Replay(scheme, emmcio.CaseStudyOptions(), run)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10.2f %12.3f\n", scheme, m.MeanResponseNs/1e6, m.SpaceUtilization)
	}
	fmt.Println("\nAny app whose size mix matches Characteristic 2 inherits the")
	fmt.Println("paper's conclusion: HPS matches 4PS space efficiency while")
	fmt.Println("serving its large requests at 8 KB-page speed.")
}
