// daysim replays a "day in the life" of a phone on one continuously aging
// device: every application session from the paper's roster runs back to
// back on the same eMMC, so later sessions see the flash state earlier
// sessions left behind. It reports how each scheme holds up across the day
// and how much garbage collection the accumulated state triggers.
package main

import (
	"fmt"
	"log"

	"emmcio"
)

// A plausible day: morning boot, commuting media, daytime messaging and
// browsing, evening video and an install.
var day = []string{
	emmcio.Booting,
	emmcio.Email,
	emmcio.Music,
	emmcio.GoogleMaps,
	emmcio.Messaging,
	emmcio.Twitter,
	emmcio.WebBrowsing,
	emmcio.Facebook,
	emmcio.Installing,
	emmcio.CameraVideo,
	emmcio.Movie,
	emmcio.Idle,
}

func main() {
	for _, scheme := range []emmcio.Scheme{emmcio.Scheme4PS, emmcio.SchemeHPS} {
		// Shrink the device so a full day of writes creates real GC
		// pressure (a day writes a few GB; the scaled device holds 8 GB).
		opt := emmcio.CaseStudyOptions()
		opt.ScaleBlocks = 4
		dev, err := emmcio.NewDevice(scheme, opt)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s (device ages across the day) ==\n", scheme)
		var offset int64
		for _, app := range day {
			tr := emmcio.GenerateTrace(app, emmcio.DefaultSeed)
			for i := range tr.Reqs {
				tr.Reqs[i].Arrival += offset
			}
			before := dev.Metrics()
			if _, err := emmcio.ReplayOn(dev, scheme, tr); err != nil {
				log.Fatalf("%s during %s: %v", scheme, app, err)
			}
			after := dev.Metrics()
			served := after.Served - before.Served
			mrt := float64(after.SumResponseNs-before.SumResponseNs) / float64(served) / 1e6
			gcMs := float64(after.GCStallNs-before.GCStallNs) / 1e6
			fmt.Printf("  %-12s %6d reqs  MRT %8.2f ms  GC stalls %8.1f ms\n",
				app, served, mrt, gcMs)
			offset = tr.Duration() + 1_000_000_000
		}
		fs := dev.FTLStats()
		fmt.Printf("  day total: %.1f GB written, write amplification %.3f, space utilization %.3f\n\n",
			float64(fs.HostPayloadBytes)/(1<<30),
			1+float64(fs.GC.PageMoves)/float64(fs.HostProgrammedPages),
			fs.SpaceUtilization())
	}
}
