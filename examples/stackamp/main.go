// stackamp walks the whole Fig. 1 stack: application transactions enter
// SQLite, SQLite drives an Ext4-like journaling file system, the file
// system emits block requests, the block layer merges and the eMMC driver
// packs them, and the device serves the result.
//
// It reproduces the "smart layers, dumb result" amplification the paper's
// related work highlights: a few bytes of application data become an order
// of magnitude more flash traffic, and SQLite's WAL mode cuts that cost.
package main

import (
	"flag"
	"fmt"
	"log"

	"emmcio"
)

func main() {
	txns := flag.Int("txns", 500, "transactions to run")
	flag.Parse()

	for _, mode := range []emmcio.SQLiteJournalMode{emmcio.SQLiteRollback, emmcio.SQLiteWAL} {
		sink := &emmcio.TraceCollector{}
		fs := emmcio.NewAndroidFS(sink)
		db, err := emmcio.OpenSQLiteDB(fs, "app.db", mode)
		if err != nil {
			log.Fatal(err)
		}
		// One "message received" per 200 ms: a 1–2 page transaction.
		for i := 0; i < *txns; i++ {
			fs.SetTime(int64(i) * 200_000_000)
			pages := []int64{int64(i % 40)}
			if i%3 == 0 {
				pages = append(pages, int64(40+i%10))
			}
			if err := db.Exec(pages); err != nil {
				log.Fatal(err)
			}
		}

		blockTrace := &sink.Trace
		blockTrace.Name = "sqlite-" + mode.String()

		// Push the block trace through the block layer + packing driver
		// onto a 4PS device.
		dev, err := emmcio.NewDevice(emmcio.Scheme4PS, emmcio.Options{})
		if err != nil {
			log.Fatal(err)
		}
		stack := emmcio.NewBlockStack(emmcio.DefaultBlockConfig(), dev)
		devTrace, stats, err := stack.Run(blockTrace)
		if err != nil {
			log.Fatal(err)
		}

		fsStats := fs.Stats()
		waf := float64(fsStats.BlockBytes) / float64(db.LogicalBytes())
		fmt.Printf("== SQLite %s mode ==\n", mode)
		fmt.Printf("  app data changed:    %8.1f KB (%d transactions)\n",
			float64(db.LogicalBytes())/1024, *txns)
		fmt.Printf("  block traffic:       %8.1f KB  (stack write amplification %.1fx)\n",
			float64(fsStats.BlockBytes)/1024, waf)
		fmt.Printf("  block requests:      %8d (journal writes %d, data writes %d)\n",
			len(blockTrace.Reqs), fsStats.JournalWrites, fsStats.DataWrites)
		fmt.Printf("  after merge+pack:    %8d device commands (max %d KB)\n",
			stats.DeviceCommands, stats.MaxCommandBytes/1024)
		m := dev.Metrics()
		fmt.Printf("  device mean service: %8.2f ms over %d served requests\n\n",
			m.MeanServiceNs()/1e6, len(devTrace.Reqs))
	}
	fmt.Println("Rollback journaling pays two fsyncs and a journal delete per")
	fmt.Println("transaction; WAL appends once — the stack-level fix the I/O-stack")
	fmt.Println("optimization literature the paper cites proposes.")
}
