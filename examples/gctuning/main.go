// gctuning demonstrates Implication 2: smartphone inter-arrival gaps are
// long enough to hide garbage collection. It replays two back-to-back
// sessions of an application on a GC-pressured device under the SSD-style
// foreground policy and under the idle-gap policy, and compares stalls.
package main

import (
	"flag"
	"fmt"
	"log"

	"emmcio"
)

func main() {
	app := flag.String("app", emmcio.Twitter, "application workload")
	seed := flag.Uint64("seed", emmcio.DefaultSeed, "generation seed")
	flag.Parse()

	base := emmcio.GenerateTrace(*app, *seed)
	// Two sessions back to back: the second overwrites the first session's
	// pages, creating the stale data GC exists to reclaim.
	tr := base.Clone()
	shift := base.Duration() + 1_000_000_000
	second := base.Clone()
	for i := range second.Reqs {
		second.Reqs[i].Arrival += shift
	}
	tr.Reqs = append(tr.Reqs, second.Reqs...)

	fmt.Printf("Workload: 2 sessions of %s (%d requests) on a GC-pressured device\n\n",
		*app, len(tr.Reqs))
	fmt.Printf("%-12s %10s %12s %12s %12s\n", "GC policy", "MRT(ms)", "stalls(ms)", "hidden(ms)", "WA")
	for _, policy := range []emmcio.GCPolicy{emmcio.GCForeground, emmcio.GCIdle} {
		opt := emmcio.Options{
			GCPolicy: policy,
			// Shrink the device so two sessions actually exhaust free
			// blocks: 128 blocks x 64 pages per plane (256 MB total).
			ScaleBlocks: 8,
			ScalePages:  16,
		}
		run := tr.Clone()
		run.ClearTimestamps()
		m, err := emmcio.Replay(emmcio.Scheme4PS, opt, run)
		if err != nil {
			log.Fatal(err)
		}
		name := "foreground"
		if policy == emmcio.GCIdle {
			name = "idle-gap"
		}
		fmt.Printf("%-12s %10.3f %12.1f %12.1f %12.3f\n",
			name, m.MeanResponseNs/1e6,
			float64(m.GCStallNs)/1e6, float64(m.IdleGCNs)/1e6,
			m.WriteAmplification)
	}
	fmt.Println("\nThe idle policy runs the same collections inside request")
	fmt.Println("inter-arrival gaps (Characteristic 6), so requests stop paying")
	fmt.Println("for them — the FTL redesign Implication 2 argues for.")
}
