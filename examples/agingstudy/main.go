// agingstudy follows a device through its endurance life: the reliability
// model (raw bit error rate growing with program/erase cycles, fixed-budget
// ECC, read retries) keeps reads fast through the rated 3000 cycles and
// then stretches them as the error rate outruns the ECC — the
// performance face of the paper's §V-A lifetime argument. A scheme that
// wastes flash (8PS padding) or garbage-collects more reaches this knee
// sooner.
package main

import (
	"fmt"
	"log"

	"emmcio"
)

func main() {
	fractions := []float64{0, 0.5, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5}
	pts, err := emmcio.RunAging(emmcio.NewExperimentEnv(emmcio.DefaultSeed), emmcio.Movie, fractions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Movie (94.6% reads) replayed on a 4PS device pre-aged to each wear level:")
	fmt.Printf("%-14s %10s %14s %16s\n", "life consumed", "MRT (ms)", "read attempts", "ECC overflow")
	for _, p := range pts {
		fmt.Printf("%13.0f%% %10.2f %14.3f %16.6f\n",
			p.LifeFraction*100, p.MRTMs, p.RetryFactor, p.FailureProb)
	}
	fmt.Println("\nReads stay at one attempt through rated life; past ~125% the ECC")
	fmt.Println("budget overflows and threshold-shifted retries stretch every read.")
	fmt.Println("Fig. 9's space-utilization gap is therefore also a latency-aging gap:")
	fmt.Println("8PS consumes erase cycles faster for the same workload.")
}
