// appcharacterize performs the paper's §III characterization for one
// application: collect the trace through BIOtracer on the measured-device
// model, then print its Table III/IV rows, its Fig. 4/5/6 distributions,
// and the size-response correlation observation.
package main

import (
	"flag"
	"fmt"
	"log"

	"emmcio"
)

func main() {
	app := flag.String("app", emmcio.Facebook, "application to characterize")
	seed := flag.Uint64("seed", emmcio.DefaultSeed, "generation seed")
	flag.Parse()

	if emmcio.Profiles().Lookup(*app) == nil {
		log.Fatalf("unknown application %q; known: %v", *app, emmcio.AllTraces)
	}
	tr := emmcio.GenerateTrace(*app, *seed)

	// Collect through BIOtracer on a 4 KB-page device with the power-mode
	// model on, standing in for the Nexus 5's eMMC.
	dev, err := emmcio.NewDevice(emmcio.Scheme4PS, measuredOptions())
	if err != nil {
		log.Fatal(err)
	}
	overhead, err := emmcio.CollectTrace(dev, tr)
	if err != nil {
		log.Fatal(err)
	}

	s := emmcio.SizeStatsOf(tr)
	fmt.Printf("== %s ==\n", tr.Name)
	fmt.Printf("Size (Table III): %d requests, %.1f KB avg (R %.1f / W %.1f), max %d KB, %.1f%% writes, %.1f%% of bytes written\n",
		s.Requests, s.AveKB, s.AveReadKB, s.AveWriteKB, s.MaxKB, s.WriteReqPct, s.WriteSizePct)

	t := emmcio.TimingStatsOf(tr)
	fmt.Printf("Timing (Table IV): %.0f s, %.2f req/s, %.1f KB/s, NoWait %.0f%%, service %.2f ms, response %.2f ms\n",
		t.DurationSec, t.ArrivalRate, t.AccessRate, t.NoWaitPct, t.MeanServMs, t.MeanRespMs)
	fmt.Printf("Locality: spatial %.1f%%, temporal %.1f%% (both weak — Characteristic 5)\n",
		t.SpatialPct, t.TemporalPct)

	d := emmcio.DistributionsOf(tr)
	fmt.Printf("Fig. 4 size buckets:          %v\n", d.Size)
	fmt.Printf("Fig. 5 response buckets:      %v\n", d.Response)
	fmt.Printf("Fig. 6 inter-arrival buckets: %v\n", d.Interarrival)
	fmt.Printf("Single-page (4 KB) share: %.1f%% (Characteristic 2 band: 44.9–57.4%%)\n",
		d.Single4KFraction()*100)

	fmt.Printf("Tracer overhead: %.2f%% extra I/Os over %d flushes (paper: ~2%%)\n",
		overhead.RequestOverhead*100, overhead.Flushes)
}

// measuredOptions enables the power-saving model on the Table V timing —
// the closest public-API stand-in for the measured Nexus 5 device.
func measuredOptions() emmcio.Options {
	opt := emmcio.CaseStudyOptions()
	opt.PowerSaving = true
	return opt
}
