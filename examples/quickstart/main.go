// Quickstart: generate a smartphone application's block-level I/O trace,
// replay it on the paper's hybrid-page-size (HPS) eMMC, and compare the
// mean response time against the conventional pure-4KB device.
package main

import (
	"fmt"
	"log"

	"emmcio"
)

func main() {
	// 1. Synthesize the Twitter session of Table II (deterministic:
	//    the same seed always yields the same trace).
	tr := emmcio.GenerateTrace(emmcio.Twitter, emmcio.DefaultSeed)
	fmt.Printf("Generated %q: %d requests, %.1f MB moved, %.1f%% writes\n",
		tr.Name, len(tr.Reqs), float64(tr.TotalBytes())/1e6,
		100*float64(tr.WriteCount())/float64(len(tr.Reqs)))

	// 2. Replay it on the conventional 4 KB-page device and on HPS
	//    (fresh 32 GB devices, the §V-B setup).
	opt := emmcio.CaseStudyOptions()
	base := tr.Clone()
	m4, err := emmcio.Replay(emmcio.Scheme4PS, opt, base)
	if err != nil {
		log.Fatal(err)
	}
	hps := tr.Clone()
	hps.ClearTimestamps()
	mH, err := emmcio.Replay(emmcio.SchemeHPS, opt, hps)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compare (Fig. 8's metric).
	fmt.Printf("4PS mean response time: %.2f ms\n", m4.MeanResponseNs/1e6)
	fmt.Printf("HPS mean response time: %.2f ms (%.1f%% lower)\n",
		mH.MeanResponseNs/1e6, 100*(1-mH.MeanResponseNs/m4.MeanResponseNs))
	fmt.Printf("HPS space utilization:  %.1f%% (4PS-equal, by construction)\n",
		mH.SpaceUtilization*100)
}
