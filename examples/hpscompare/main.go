// hpscompare runs the paper's §V case study end to end on a chosen set of
// applications: replay each trace on the 4PS, 8PS and HPS devices of
// Table V and print the Fig. 8 (mean response time) and Fig. 9 (space
// utilization) comparison.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"emmcio"
)

func main() {
	apps := flag.String("apps", "Booting,Movie,Twitter,Installing",
		"comma-separated application list")
	seed := flag.Uint64("seed", emmcio.DefaultSeed, "generation seed")
	flag.Parse()

	names := strings.Split(*apps, ",")
	opt := emmcio.CaseStudyOptions()
	schemes := []emmcio.Scheme{emmcio.Scheme4PS, emmcio.Scheme8PS, emmcio.SchemeHPS}

	fmt.Printf("%-12s %10s %10s %10s %12s %10s\n",
		"Application", "4PS(ms)", "8PS(ms)", "HPS(ms)", "HPSvs4PS", "8PSutil")
	for _, name := range names {
		name = strings.TrimSpace(name)
		if emmcio.Profiles().Lookup(name) == nil {
			log.Fatalf("unknown application %q", name)
		}
		var mrt [3]float64
		var util [3]float64
		for i, s := range schemes {
			tr := emmcio.GenerateTrace(name, *seed)
			m, err := emmcio.Replay(s, opt, tr)
			if err != nil {
				log.Fatal(err)
			}
			mrt[i] = m.MeanResponseNs / 1e6
			util[i] = m.SpaceUtilization
		}
		fmt.Printf("%-12s %10.2f %10.2f %10.2f %11.1f%% %10.3f\n",
			name, mrt[0], mrt[1], mrt[2], 100*(1-mrt[2]/mrt[0]), util[1])
	}
	fmt.Println("\nHPS always matches 4PS space utilization (1.000) while serving")
	fmt.Println("large requests with 8 KB pages — the paper's §V design point.")
}
