GO ?= go

# `make check` is the repository's pre-merge gate: static checks, a full
# build, the sweep-runner suite under the race detector, the test suite under
# the race detector, the telemetry overhead budget
# (TestTelemetryOverheadBudget fails if disabled telemetry shifts the
# mean response time by 5% or more — it must be exactly 0), and the recorded
# benchmark trajectory (bench-gate fails on a >15% ns/op or allocs/op
# regression between the two newest BENCH_*.json snapshots; it is a no-op
# until a second snapshot exists).
.PHONY: check
check: vet build runner-race faults-race stream-race server-race coord-race device-race devstore-race perf-race race overhead bench-gate

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

# Tier-1 gate: vet, full build, full test suite.
.PHONY: test
test: vet build
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# The sweep runner is the one deliberately concurrent layer; run its suite
# twice under the race detector (scheduling varies between runs).
.PHONY: runner-race
runner-race:
	$(GO) test -race -count=2 ./internal/runner

# The fault-injection plane under the race detector: injector determinism,
# FTL retirement paths, device recovery, and the fault-ramp sweep at -j 8.
.PHONY: faults-race
faults-race:
	$(GO) test -race -run 'Fault|Retire|DeepAged|Uncorrectable' ./internal/faults ./internal/ftl ./internal/emmc ./internal/experiments

# The streaming pipeline under the race detector: stream primitives and
# codecs, the streaming replay loops, online statistics, and the
# stream-vs-slice equivalence sweep at full worker width.
.PHONY: stream-race
stream-race:
	$(GO) test -race -run 'Stream|Online|Accumulator|Repeat|Merge' ./internal/trace ./internal/core ./internal/stats ./internal/analysis ./internal/experiments

# The device layer under the race detector: the backend-neutral storage
# seam, the UFS command-queue/booster model, the blockdev driver's
# capability-gated packing, and the cross-backend determinism suite (which
# replays all three backends in parallel subtests).
.PHONY: device-race
device-race:
	$(GO) test -race ./internal/storage ./internal/ufs ./internal/blockdev
	$(GO) test -race -run 'CrossBackend|Golden|BackendsDiverge|UFS' ./internal/core

# The job service under the race detector: queue backpressure, mid-replay
# cancellation, drain-on-shutdown, and the 64-way concurrent submission
# load test (scheduling varies between runs, hence -count=2).
.PHONY: server-race
server-race:
	$(GO) test -race -count=2 ./internal/server

# The sweep coordinator under the race detector: shard fan-out determinism,
# the chaos harness (429-saturated, stalling, and dying workers), local
# degradation, and cancel-mid-sweep propagation (scheduling and failure
# interleavings vary between runs, hence -count=2).
.PHONY: coord-race
coord-race:
	$(GO) test -race -count=2 ./internal/coord

# The device snapshot store under the race detector: concurrent Put/Get/
# evict on the content-addressed archive, seal/restore determinism, the
# fork-vs-reage bit-identity contract, and the /v1/devices + from_device
# server surface (the store is shared mutable state under every age job
# and fork admission, so interleavings matter; -count=2 varies them).
.PHONY: devstore-race
devstore-race:
	$(GO) test -race -count=2 ./internal/devstore
	$(GO) test -race -run 'Seal|Fork|Aged|Device' ./internal/storage ./internal/experiments ./internal/server

# The pooling layer under the race detector: the event engine's slot
# recycling and the allocation-sensitive replay paths. Pools turn
# would-be-fresh objects into shared mutable state, so this is where a
# forgotten reset or an aliased scratch buffer shows up first.
.PHONY: perf-race
perf-race:
	$(GO) test -race ./internal/sim
	$(GO) test -race -run 'Alloc|Equivalence|Pool|Recycle|Scratch' ./internal/core ./internal/emmc ./internal/ufs ./internal/ftl

.PHONY: overhead
overhead:
	$(GO) test -run TestTelemetryOverheadBudget -v .

.PHONY: bench
bench:
	$(GO) test -bench=. -benchtime=1x .

# Capture CPU and heap profiles of the streaming replay hot loop into
# ./prof/ for pprof inspection (`go tool pprof prof/replay.cpu`). See
# docs/PERF.md for how to read them and for profiling a live server run.
.PHONY: profile
profile:
	mkdir -p prof
	$(GO) test -run '^$$' -bench 'ReplayStream1k|ReplayUFS1k' -benchtime=200x \
		-cpuprofile=prof/replay.cpu -memprofile=prof/replay.mem \
		-o prof/core.test ./internal/core
	@echo "profiles written: prof/replay.cpu prof/replay.mem (binary prof/core.test)"

# Record one point on the performance trajectory: run the stream/sweep/replay
# benchmark set and write BENCH_<today>.json (commit it with the PR).
.PHONY: bench-snapshot
bench-snapshot:
	$(GO) run ./cmd/benchsnap

# Gate the trajectory: compare the two newest BENCH_*.json snapshots and fail
# on a >15% regression in ns/op or allocs/op. Skips (exit 0) until two
# snapshots exist.
.PHONY: bench-gate
bench-gate:
	$(GO) run ./cmd/benchsnap -compare
