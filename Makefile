GO ?= go

# `make check` is the repository's pre-merge gate: static checks, a full
# build, the test suite under the race detector, and the telemetry overhead
# budget (TestTelemetryOverheadBudget fails if disabled telemetry shifts the
# mean response time by 5% or more — it must be exactly 0).
.PHONY: check
check: vet build race overhead

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: overhead
overhead:
	$(GO) test -run TestTelemetryOverheadBudget -v .

.PHONY: bench
bench:
	$(GO) test -bench=. -benchtime=1x .
