GO ?= go

# `make check` is the repository's pre-merge gate: static checks, a full
# build, the sweep-runner suite under the race detector, the test suite under
# the race detector, and the telemetry overhead budget
# (TestTelemetryOverheadBudget fails if disabled telemetry shifts the
# mean response time by 5% or more — it must be exactly 0).
.PHONY: check
check: vet build runner-race race overhead

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# The sweep runner is the one deliberately concurrent layer; run its suite
# twice under the race detector (scheduling varies between runs).
.PHONY: runner-race
runner-race:
	$(GO) test -race -count=2 ./internal/runner

.PHONY: overhead
overhead:
	$(GO) test -run TestTelemetryOverheadBudget -v .

.PHONY: bench
bench:
	$(GO) test -bench=. -benchtime=1x .
