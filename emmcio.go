// Package emmcio is a full reproduction of "I/O Characteristics of
// Smartphone Applications and Their Implications for eMMC Design"
// (Zhou, Pan, Wang, Xie — IISWC 2015) as a reusable Go library.
//
// It provides, from scratch and with no dependencies beyond the standard
// library:
//
//   - calibrated synthetic workload generators for the paper's 18 smartphone
//     applications and 7 application combos (Tables III/IV, Figs. 4/6/7);
//   - a BIOtracer-equivalent block-level I/O monitor with the paper's
//     three-point timestamping and ~2% logging overhead (§II);
//   - an event-driven eMMC device simulator in the SSDsim tradition —
//     channels, dies, planes, page-mapping FTL with greedy GC and
//     round-robin wear leveling, low-power states, optional RAM buffer;
//   - the hybrid-page-size (HPS) scheme of §V alongside the pure-4KB (4PS)
//     and pure-8KB (8PS) baselines of Table V;
//   - analysis of the six Characteristics, and experiment runners that
//     regenerate every table and figure of the paper.
//
// # Quick start
//
//	tr := emmcio.GenerateTrace(emmcio.Twitter, emmcio.DefaultSeed)
//	m, err := emmcio.Replay(emmcio.SchemeHPS, emmcio.CaseStudyOptions(), tr)
//	if err != nil { ... }
//	fmt.Printf("HPS mean response time: %.2f ms\n", m.MeanResponseNs/1e6)
//
// The cmd/experiments binary prints every table and figure; EXPERIMENTS.md
// records paper-versus-measured values for each.
package emmcio

import (
	"context"
	"io"

	"emmcio/internal/analysis"
	"emmcio/internal/androidstack"
	"emmcio/internal/biotracer"
	"emmcio/internal/blockdev"
	"emmcio/internal/core"
	"emmcio/internal/emmc"
	"emmcio/internal/experiments"
	"emmcio/internal/ftl"
	"emmcio/internal/paper"
	"emmcio/internal/reliability"
	"emmcio/internal/storage"
	"emmcio/internal/trace"
	"emmcio/internal/workload"
)

// Trace model.
type (
	// Trace is an ordered block-level I/O trace.
	Trace = trace.Trace
	// Request is one block-level I/O request with BIOtracer's timestamps.
	Request = trace.Request
	// Op is a request's access type.
	Op = trace.Op
)

// Request operation kinds.
const (
	Read  = trace.Read
	Write = trace.Write
)

// Trace codecs.
var (
	// ReadTraceText parses the one-request-per-line text format.
	ReadTraceText = trace.ReadText
	// WriteTraceText serializes a trace in the text format.
	WriteTraceText = trace.WriteText
	// ReadTraceBinary parses the compact binary record stream.
	ReadTraceBinary = trace.ReadBinary
	// WriteTraceBinary serializes a trace in the binary format.
	WriteTraceBinary = trace.WriteBinary
	// ReadBlkparse imports blkparse(1) text output, so real device traces
	// flow through the same analysis and replay pipelines.
	ReadBlkparse = trace.ReadBlkparse
	// MergeTraces interleaves two traces by arrival time (combo building).
	MergeTraces = trace.Merge
)

// Application and combo-trace names (Tables I and II).
const (
	Idle        = paper.Idle
	CallIn      = paper.CallIn
	CallOut     = paper.CallOut
	Booting     = paper.Booting
	Movie       = paper.Movie
	Music       = paper.Music
	AngryBirds  = paper.AngryBirds
	CameraVideo = paper.CameraVideo
	GoogleMaps  = paper.GoogleMaps
	Messaging   = paper.Messaging
	Twitter     = paper.Twitter
	Email       = paper.Email
	Facebook    = paper.Facebook
	Amazon      = paper.Amazon
	YouTube     = paper.YouTube
	Radio       = paper.Radio
	Installing  = paper.Installing
	WebBrowsing = paper.WebBrowsing

	MusicWB  = paper.MusicWB
	RadioWB  = paper.RadioWB
	MusicFB  = paper.MusicFB
	RadioFB  = paper.RadioFB
	MusicMsg = paper.MusicMsg
	RadioMsg = paper.RadioMsg
	FBMsg    = paper.FBMsg
)

// Trace rosters.
var (
	// IndividualApps lists the 18 single-application traces in paper order.
	IndividualApps = paper.IndividualApps
	// ComboApps lists the 7 combo traces in paper order.
	ComboApps = paper.ComboApps
	// AllTraces lists all 25 traces in paper order.
	AllTraces = paper.AllTraces
)

// DefaultSeed reproduces the repository's canonical 25 traces.
const DefaultSeed = workload.DefaultSeed

// Profile is a calibrated application workload model.
type Profile = workload.Profile

// Profiles returns the full registry of 25 calibrated profiles.
func Profiles() *workload.Registry { return workload.DefaultRegistry() }

// GenerateTrace synthesizes the named application's trace. It panics on an
// unknown name; use Profiles().Lookup to probe.
func GenerateTrace(name string, seed uint64) *Trace {
	p := workload.DefaultRegistry().Lookup(name)
	if p == nil {
		panic("emmcio: unknown application " + name)
	}
	return p.Generate(seed)
}

// Device model.
type (
	// StorageDevice is the backend-neutral device interface every backend
	// implements; NewDevice returns one. Concrete eMMC state (snapshots,
	// utilization breakdowns) stays on Device.
	StorageDevice = storage.Device
	// Backend selects a device implementation: "emmc" (default), "sd", "ufs".
	Backend = storage.Backend
	// DeviceCaps describes a backend's capabilities (packed-command
	// support, queue depth).
	DeviceCaps = storage.Caps
	// Device is a simulated eMMC device.
	Device = emmc.Device
	// DeviceConfig configures a device.
	DeviceConfig = emmc.Config
	// Scheme selects a Table V page-size organization.
	Scheme = core.Scheme
	// Options tweak a scheme's device for ablations.
	Options = core.Options
	// Metrics summarizes one replay.
	Metrics = core.Metrics
	// GCPolicy selects foreground or idle garbage collection.
	GCPolicy = emmc.GCPolicy
)

// The built-in device backends.
const (
	BackendEMMC = storage.BackendEMMC
	BackendSD   = storage.BackendSD
	BackendUFS  = storage.BackendUFS
)

// The three Table V schemes.
const (
	Scheme4PS = core.Scheme4PS
	Scheme8PS = core.Scheme8PS
	SchemeHPS = core.SchemeHPS
)

// Garbage-collection policies.
const (
	GCForeground = emmc.GCForeground
	GCIdle       = emmc.GCIdle
)

// WearPolicy selects the FTL wear-leveling strategy (Implication 4).
type WearPolicy = ftl.WearPolicy

// Wear-leveling policies.
const (
	WearRoundRobin = ftl.WearRoundRobin
	WearNone       = ftl.WearNone
	WearStatic     = ftl.WearStatic
)

// Device construction and replay.
var (
	// NewDevice builds a fresh device for a scheme.
	NewDevice = core.NewDevice
	// ReplayContext runs a trace through a fresh device, filling its
	// timestamps. The replay loop checks ctx between events, so
	// cancellation and deadlines abort it in bounded time.
	ReplayContext = core.ReplayContext
	// ReplayOnContext replays onto an existing (possibly aged) device
	// under ctx.
	ReplayOnContext = core.ReplayOnContext
	// Replay runs a trace through a fresh device, filling its timestamps.
	//
	// Deprecated: use ReplayContext, which the server and any caller with
	// a deadline should prefer; Replay is ReplayContext with
	// context.Background.
	Replay = core.Replay
	// ReplayOn replays onto an existing (possibly aged) device.
	//
	// Deprecated: use ReplayOnContext.
	ReplayOn = core.ReplayOn
	// CaseStudyOptions are the §V experiment settings.
	CaseStudyOptions = core.CaseStudyOptions
	// DefaultTiming is the Table V simulation latency model.
	DefaultTiming = core.DefaultTiming
)

// Analysis.
type (
	// SizeStats mirrors a Table III row.
	SizeStats = analysis.SizeStats
	// TimingStats mirrors a Table IV row.
	TimingStats = analysis.TimingStats
	// Distributions holds a trace's Figs. 4–6 histograms.
	Distributions = analysis.Distributions
	// Finding is a verdict on one of the six Characteristics.
	Finding = analysis.Finding
)

// Analysis entry points.
var (
	// SizeStatsOf measures Table III columns.
	SizeStatsOf = analysis.SizeStatsOf
	// TimingStatsOf measures Table IV columns (replayed traces).
	TimingStatsOf = analysis.TimingStatsOf
	// DistributionsOf builds the per-trace histograms.
	DistributionsOf = analysis.DistributionsOf
	// EvaluateCharacteristics checks the six Characteristics on a trace set.
	EvaluateCharacteristics = analysis.EvaluateCharacteristics
)

// Tracer exposes the BIOtracer reproduction.
type Tracer = biotracer.Tracer

// TracerOverheadReport is the §II-C overhead summary.
type TracerOverheadReport = biotracer.Overhead

// NewTracer wraps a device with a BIOtracer monitor.
func NewTracer(dev StorageDevice) *Tracer { return biotracer.New(dev) }

// CollectTrace replays a trace through a tracer on the device, filling all
// timestamps and returning the tracer overhead.
func CollectTrace(dev StorageDevice, tr *Trace) (TracerOverheadReport, error) {
	return biotracer.Collect(dev, tr)
}

// Block layer and driver (the kernel half of the paper's Fig. 1 stack).
type (
	// BlockQueue is the block-layer request queue with elevator merging.
	BlockQueue = blockdev.Queue
	// BlockDriver is the eMMC driver's packing stage.
	BlockDriver = blockdev.Driver
	// BlockStack wires queue, driver and device together.
	BlockStack = blockdev.Stack
	// BlockConfig tunes the queue and driver.
	BlockConfig = blockdev.Config
)

// Block layer construction.
var (
	// NewBlockStack assembles a block layer + driver in front of a device.
	NewBlockStack = blockdev.NewStack
	// DefaultBlockConfig mirrors an eMMC 4.5 driver.
	DefaultBlockConfig = blockdev.DefaultConfig
)

// Android upper stack (SQLite + Ext4 journaling, the amplification pipeline
// the paper's related work discusses).
type (
	// AndroidFS is the Ext4-ordered-mode file-system model.
	AndroidFS = androidstack.FS
	// SQLiteDB is a SQLite database on the AndroidFS.
	SQLiteDB = androidstack.DB
	// SQLiteJournalMode selects rollback-journal or WAL durability.
	SQLiteJournalMode = androidstack.JournalMode
	// TraceCollector is a Sink gathering emitted block requests.
	TraceCollector = androidstack.TraceSink
)

// SQLite journal modes.
const (
	SQLiteRollback = androidstack.Rollback
	SQLiteWAL      = androidstack.WAL
)

// Android stack construction.
var (
	// NewAndroidFS builds the file-system model over a request sink.
	NewAndroidFS = androidstack.NewFS
	// OpenSQLiteDB creates/opens a database on the file system.
	OpenSQLiteDB = androidstack.OpenDB
)

// Experiments expose the table/figure runners for downstream tooling.
type ExperimentEnv = experiments.Env

// NewExperimentEnv builds an experiment environment for a seed.
func NewExperimentEnv(seed uint64) *ExperimentEnv { return experiments.NewEnv(seed) }

// RunCaseStudyContext is RunCaseStudy bounded by ctx: it records ctx on
// the env (Env.Ctx), so the §V sweep's replay loops abort between events
// once ctx is done. The ctx stays attached to env for later sweeps.
func RunCaseStudyContext(ctx context.Context, env *ExperimentEnv, w io.Writer) error {
	env.Ctx = ctx
	return RunCaseStudy(env, w)
}

// RunCaseStudy reproduces Figs. 8 and 9 and writes both tables to w.
//
// Deprecated: use RunCaseStudyContext; RunCaseStudy runs unbounded (or
// under whatever Env.Ctx is already set).
func RunCaseStudy(env *ExperimentEnv, w io.Writer) error {
	res, err := experiments.CaseStudy(env)
	if err != nil {
		return err
	}
	if err := res.RenderFig8().WriteText(w); err != nil {
		return err
	}
	return res.RenderFig9().WriteText(w)
}

// Reliability exposes the wear-dependent read-retry model.
type ReliabilityModel = reliability.Model

// DefaultReliability returns the MLC-class reliability model.
func DefaultReliability() *ReliabilityModel { return reliability.Default() }

// AgingPoint is one wear level of the aging curve.
type AgingPoint = experiments.AgingPoint

// RunAgingContext is RunAging bounded by ctx (recorded on Env.Ctx, as in
// RunCaseStudyContext).
func RunAgingContext(ctx context.Context, env *ExperimentEnv, app string, lifeFractions []float64) ([]AgingPoint, error) {
	env.Ctx = ctx
	return RunAging(env, app, lifeFractions)
}

// RunAging replays a trace on devices pre-aged to the given endurance
// fractions and returns the read-latency aging curve.
//
// Deprecated: use RunAgingContext.
func RunAging(env *ExperimentEnv, app string, lifeFractions []float64) ([]AgingPoint, error) {
	return experiments.Aging(env, app, lifeFractions)
}

// Device persistence: archive an aged device and resume it later.
var (
	// RestoreDevice rebuilds a device of the given backend from a Snapshot
	// stream (snapshot layouts are backend-specific; "" means eMMC).
	RestoreDevice = core.RestoreDevice
	// RestoreEMMCDevice rebuilds a concrete *Device from an eMMC snapshot.
	RestoreEMMCDevice = emmc.RestoreSnapshot
)

// Additional trace tooling.
var (
	// WriteTraceCompressed serializes with the delta+varint codec (several
	// times smaller than the fixed binary format for real traces).
	WriteTraceCompressed = trace.WriteCompressed
	// ReadTraceCompressed parses the compressed codec.
	ReadTraceCompressed = trace.ReadCompressed
	// StreamTraceText processes a text trace incrementally in constant
	// memory.
	StreamTraceText = trace.StreamText
	// ConcatTraces joins sessions back to back with a gap.
	ConcatTraces = trace.Concat
)

// FullReport bundles a trace's complete §III characterization.
type FullReport = analysis.FullReport

// AnalyzeTrace computes the complete characterization of a replayed trace.
var AnalyzeTrace = analysis.Report

// Workload composers for building new combo traces (§III-D's two modes).
var (
	// ConcurrentCombo interleaves two applications running simultaneously.
	ConcurrentCombo = workload.Concurrent
	// SwitchingCombo alternates foreground between two applications with a
	// mean dwell time, plus a background trickle from the inactive one —
	// the FB/Msg collection protocol.
	SwitchingCombo = workload.Switching
	// ProfileFromJSON parses a JSON workload profile.
	ProfileFromJSON = workload.ReadProfileJSON
	// ProfileToJSON serializes a workload profile.
	ProfileToJSON = workload.WriteProfileJSON
)
