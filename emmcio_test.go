package emmcio

import (
	"bytes"
	"strings"
	"testing"
)

// stringsReader avoids importing strings twice in examples of the test.
func stringsReader(s string) *strings.Reader { return strings.NewReader(s) }

// Facade smoke tests: the public API works end to end the way the package
// documentation promises.

func TestQuickStartFlow(t *testing.T) {
	tr := GenerateTrace(Twitter, DefaultSeed)
	if len(tr.Reqs) == 0 {
		t.Fatal("empty trace")
	}
	m, err := Replay(SchemeHPS, CaseStudyOptions(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanResponseNs <= 0 {
		t.Fatal("no response time measured")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTracePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown app did not panic")
		}
	}()
	GenerateTrace("Netflix", 1)
}

func TestProfilesRegistry(t *testing.T) {
	reg := Profiles()
	if len(reg.Names()) != 25 {
		t.Fatalf("registry holds %d profiles, want 25", len(reg.Names()))
	}
	if reg.Lookup(Movie) == nil {
		t.Fatal("Movie profile missing")
	}
}

func TestTraceCodecsExported(t *testing.T) {
	tr := GenerateTrace(CallIn, DefaultSeed)
	var buf bytes.Buffer
	if err := WriteTraceBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != CallIn || len(got.Reqs) != len(tr.Reqs) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestTracerFacade(t *testing.T) {
	dev, err := NewDevice(Scheme4PS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := GenerateTrace(YouTube, DefaultSeed)
	o, err := CollectTrace(dev, tr)
	if err != nil {
		t.Fatal(err)
	}
	if o.MonitoredRequests != len(tr.Reqs) {
		t.Fatal("tracer missed requests")
	}
	stats := TimingStatsOf(tr)
	if stats.MeanRespMs <= 0 {
		t.Fatal("no timing stats after collection")
	}
}

func TestAnalysisFacade(t *testing.T) {
	tr := GenerateTrace(Email, DefaultSeed)
	s := SizeStatsOf(tr)
	if s.Requests != len(tr.Reqs) {
		t.Fatal("size stats request count mismatch")
	}
	d := DistributionsOf(tr)
	if d.Size.Total() != int64(len(tr.Reqs)) {
		t.Fatal("distribution count mismatch")
	}
}

func TestRosterConstants(t *testing.T) {
	if len(IndividualApps) != 18 || len(ComboApps) != 7 || len(AllTraces) != 25 {
		t.Fatal("roster constants drifted")
	}
}

func TestRunCaseStudySubset(t *testing.T) {
	// Full case study is exercised in internal/experiments; here just check
	// the public entry point renders on a tiny environment by reusing it
	// with the default env but only verifying it starts producing output.
	if testing.Short() {
		t.Skip("runs 54 replays")
	}
	env := NewExperimentEnv(DefaultSeed)
	var buf bytes.Buffer
	if err := RunCaseStudy(env, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 8") || !strings.Contains(out, "Fig. 9") {
		t.Fatal("case study output missing figures")
	}
	if !strings.Contains(out, "Booting") {
		t.Fatal("case study output missing traces")
	}
}

func TestAndroidStackFacade(t *testing.T) {
	sink := &TraceCollector{}
	fs := NewAndroidFS(sink)
	db, err := OpenSQLiteDB(fs, "t.db", SQLiteWAL)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec([]int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if len(sink.Trace.Reqs) == 0 {
		t.Fatal("stack emitted nothing")
	}
	if db.LogicalBytes() != 2*4096 {
		t.Fatalf("logical bytes %d", db.LogicalBytes())
	}
}

func TestBlockStackFacade(t *testing.T) {
	dev, err := NewDevice(Scheme4PS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := NewBlockStack(DefaultBlockConfig(), dev)
	tr := GenerateTrace(CallOut, DefaultSeed)
	out, stats, err := st.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeviceRequests == 0 || len(out.Reqs) == 0 {
		t.Fatal("stack served nothing")
	}
	if out.TotalBytes() != tr.TotalBytes() {
		t.Fatal("stack lost bytes")
	}
}

func TestWearPolicyFacade(t *testing.T) {
	opt := Options{Wear: WearStatic}
	dev, err := NewDevice(Scheme4PS, opt)
	if err != nil {
		t.Fatal(err)
	}
	em, ok := dev.(*Device)
	if !ok {
		t.Fatalf("default backend is %T, want the eMMC device", dev)
	}
	if em.Config().Wear != WearStatic {
		t.Fatal("wear policy not plumbed through")
	}
}

func TestReadBlkparseFacade(t *testing.T) {
	in := "8,0 0 1 0.000001 1 Q W 800 + 8 [x]\n"
	tr, err := ReadBlkparse(stringsReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Reqs) != 1 {
		t.Fatal("blkparse import failed")
	}
}
