package emmcio

// End-to-end CLI smoke tests: build each binary once and drive the
// documented flows against a temp directory. These catch flag wiring and
// format regressions the package tests cannot see.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLIs compiles every binary into a temp dir, once per test run.
func buildCLIs(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	for _, tool := range []string{"biotracer", "tracestat", "emmcsim", "experiments", "tracediff", "emmcd"} {
		bin := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	bins := buildCLIs(t)
	work := t.TempDir()

	// 1. Collect a session.
	out := run(t, filepath.Join(bins, "biotracer"), "-app", "CallIn", "-dir", work)
	if !strings.Contains(out, "CallIn") || !strings.Contains(out, "tracer overhead") {
		t.Fatalf("biotracer output: %s", out)
	}
	tracePath := filepath.Join(work, "CallIn.trace")
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatal(err)
	}

	// 2. Characterize the file.
	out = run(t, filepath.Join(bins, "tracestat"), tracePath)
	for _, want := range []string{"CallIn", "Table III columns", "Table IV columns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tracestat output missing %q:\n%s", want, out)
		}
	}
	// JSON mode parses as JSON-ish (starts with a brace).
	out = run(t, filepath.Join(bins, "tracestat"), "-json", tracePath)
	if !strings.HasPrefix(strings.TrimSpace(out), "{") {
		t.Fatalf("tracestat -json did not emit JSON:\n%.100s", out)
	}

	// 3. Replay the file on every scheme, then snapshot/resume a device.
	out = run(t, filepath.Join(bins, "emmcsim"), "-in", tracePath)
	for _, want := range []string{"4PS", "8PS", "HPS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("emmcsim output missing %q:\n%s", want, out)
		}
	}

	// 3b. Observability exports: Prometheus metrics + Chrome trace JSON.
	promPath := filepath.Join(work, "out.prom")
	chromePath := filepath.Join(work, "out.json")
	out = run(t, filepath.Join(bins, "emmcsim"), "-in", tracePath, "-scheme", "HPS",
		"-metrics", promPath, "-trace", chromePath, "-trace-buffer", "65536")
	if !strings.Contains(out, "telemetry summary") {
		t.Fatalf("emmcsim did not print a telemetry summary:\n%s", out)
	}
	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE core_response_ns histogram", "emmc_requests_total{op=\"read\"}", "ftl_"} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("metrics file missing %q:\n%.500s", want, prom)
		}
	}
	chrome, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, "requests/", "channel/"} {
		if !strings.Contains(string(chrome), want) {
			t.Fatalf("chrome trace missing %q:\n%.500s", want, chrome)
		}
	}
	snap := filepath.Join(work, "dev.snap")
	run(t, filepath.Join(bins, "emmcsim"), "-app", "CallOut", "-scheme", "HPS", "-save", snap)
	out = run(t, filepath.Join(bins, "emmcsim"), "-app", "CallIn", "-scheme", "HPS", "-load", snap)
	if !strings.Contains(out, "HPS") {
		t.Fatalf("resumed replay output:\n%s", out)
	}

	// 4. A fast experiment in all three formats + SVG.
	exp := filepath.Join(bins, "experiments")
	out = run(t, exp, "-exp", "tableV")
	if !strings.Contains(out, "Blocks per plane") {
		t.Fatalf("tableV output:\n%s", out)
	}
	out = run(t, exp, "-exp", "tableV", "-md")
	if !strings.Contains(out, "| Parameter | 4PS | 8PS | HPS |") {
		t.Fatalf("markdown output:\n%s", out)
	}
	out = run(t, exp, "-exp", "tableV", "-csv")
	if !strings.Contains(out, "Parameter,4PS,8PS,HPS") {
		t.Fatalf("csv output:\n%s", out)
	}
	svgDir := filepath.Join(work, "figs")
	run(t, exp, "-exp", "fig3", "-svg", svgDir, "-fig3-reqs", "2")
	svg, err := os.ReadFile(filepath.Join(svgDir, "fig3.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Fatal("fig3.svg is not SVG")
	}

	// 5. Compare two schemes' replays with tracediff.
	a := filepath.Join(work, "a.trace")
	bTr := filepath.Join(work, "b.trace")
	run(t, filepath.Join(bins, "emmcsim"), "-app", "CallIn", "-scheme", "4PS", "-o", a)
	run(t, filepath.Join(bins, "emmcsim"), "-app", "CallIn", "-scheme", "HPS", "-o", bTr)
	out = run(t, filepath.Join(bins, "tracediff"), a, bTr)
	if !strings.Contains(out, "mean response") || !strings.Contains(out, "B faster on") {
		t.Fatalf("tracediff output:\n%s", out)
	}

	// 5b. Service-time percentiles from a replayed (timestamped) trace.
	out = run(t, filepath.Join(bins, "tracestat"), "-percentiles", a)
	if !strings.Contains(out, "Service-time percentiles") || !strings.Contains(out, "p99") {
		t.Fatalf("tracestat -percentiles output:\n%s", out)
	}

	// 6. A JSON profile end to end.
	profile := filepath.Join(work, "custom.json")
	profileJSON := `{"name":"Custom","durationSec":60,"requests":200,"writeFrac":0.8,
		"meanReadKB":20,"meanWriteKB":12,"maxKB":256,"spatial":0.2,"temporal":0.3,
		"p4":0.5,"burstFrac":0.7,"burstMeanMs":5}`
	if err := os.WriteFile(profile, []byte(profileJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(t, filepath.Join(bins, "emmcsim"), "-profile", profile, "-scheme", "4PS")
	if !strings.Contains(out, "Custom") {
		t.Fatalf("profile replay output:\n%s", out)
	}
}

// Every example builds and the fast ones run to completion.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs example binaries")
	}
	dir := t.TempDir()
	examples := []struct {
		name string
		args []string
		fast bool
	}{
		{name: "quickstart", fast: true},
		{name: "customapp", fast: true},
		{name: "appcharacterize", args: []string{"-app", "CallIn"}, fast: true},
		{name: "hpscompare", args: []string{"-apps", "CallIn"}, fast: true},
		{name: "gctuning", fast: true},
		{name: "powermode", fast: false}, // replays 8 traces
		{name: "stackamp", args: []string{"-txns", "50"}, fast: true},
		{name: "agingstudy", fast: false},
		{name: "daysim", fast: false},
	}
	for _, ex := range examples {
		bin := filepath.Join(dir, ex.name)
		cmd := exec.Command("go", "build", "-o", bin, "./examples/"+ex.name)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", ex.name, err, out)
		}
		if !ex.fast {
			continue
		}
		out := run(t, bin, ex.args...)
		if len(out) == 0 {
			t.Errorf("%s produced no output", ex.name)
		}
	}
}
